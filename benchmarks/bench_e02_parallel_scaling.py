"""E2 — Theorem 4.5: parallel rounds Θ(√(νN/M)), independent of n."""

import numpy as np

from repro.analysis import compare_envelope, fit_power_law
from repro.core import sample_parallel, theoretical_parallel_rounds
from repro.database import DistributedDatabase, Multiset

UNIVERSES = (64, 256, 1024, 4096)
MACHINES = (1, 2, 4, 8)


def _instance(n_univ: int, n_machines: int) -> DistributedDatabase:
    shards = [Multiset(n_univ, {0: 1, 1: 1})] + [
        Multiset.empty(n_univ) for _ in range(n_machines - 1)
    ]
    return DistributedDatabase.from_shards(shards, nu=1)


def test_e02_parallel_scaling(benchmark, report):
    rows = []
    rounds_vs_universe = []
    for n_univ in UNIVERSES:
        result = sample_parallel(_instance(n_univ, 2))
        predicted = theoretical_parallel_rounds(n_univ, 2, 1)
        rounds_vs_universe.append(result.parallel_rounds)
        rows.append(
            [
                n_univ,
                2,
                result.parallel_rounds,
                round(predicted, 1),
                f"{result.parallel_rounds / predicted:.3f}",
                f"{result.fidelity:.12f}",
            ]
        )

    rounds_vs_machines = []
    for n in MACHINES:
        result = sample_parallel(_instance(1024, n))
        rounds_vs_machines.append(result.parallel_rounds)
        rows.append(
            [1024, n, result.parallel_rounds, "-", "-", f"{result.fidelity:.12f}"]
        )

    fit = fit_power_law(UNIVERSES, rounds_vs_universe)
    assert abs(fit.slope - 0.5) < 0.1, f"√N slope violated: {fit.slope}"
    assert len(set(rounds_vs_machines)) == 1, "rounds must not depend on n"
    envelope = compare_envelope(
        rounds_vs_universe,
        [theoretical_parallel_rounds(u, 2, 1) for u in UNIVERSES],
    )
    assert envelope.within_constant(1.5)

    report(
        "E02",
        f"Thm 4.5: parallel rounds Θ(√(νN/M)), n-free; fitted slope = {fit.slope:.3f}",
        ["N", "n", "rounds", "2π√(νN/M)", "ratio", "fidelity"],
        rows,
        payload={"slope": fit.slope, "rounds_vs_machines": rounds_vs_machines},
    )

    benchmark(lambda: sample_parallel(_instance(1024, 4)))
