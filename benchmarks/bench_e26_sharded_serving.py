"""E26 — sharded serving: offered-load sweep across worker-tier widths.

The sharded tier's claim: splitting the serving loop across N shard
workers (each owning the pack→build→execute cycle for its affinity
classes, results returned through the shared-memory arena) multiplies
sustained throughput without giving up the audit surface. Acceptance
bars (ISSUE 6):

* **equivalence** — rows from the sharded tier are row-for-row
  equivalent (1e-12 fidelity tolerance, everything else exact, modulo
  wall-clock columns) to the single-process :class:`SamplerService` fed
  the same request stream and seeds — asserted unconditionally, smoke
  included;
* **zero-copy** — under the default arena size every batch returns via
  shared memory: ``shm_batches > 0`` and ``shm_fallback_batches == 0``;
* **scaling** — with ≥4 CPU cores available, 4 shards sustain ≥ **2×**
  the single-process dispatcher's instances/sec at full offered load
  (gated on ``os.sched_getaffinity``: shared single-core runners cannot
  express the parallelism and skip the bar, never fake it).

``test_e26_sharded_serving`` runs the full sweep — Poisson and bursty
diurnal arrival traces × shards {1, 2, 4} — and archives the trajectory;
``test_e26_smoke_small`` is the CI-sized variant (tiny trace, shards=2,
equivalence + zero-copy bars only) archiving ``benchmarks/_results/E26.json``;
``test_e26_scaling_bar`` asserts the ≥2× bar and skips below 4 cores.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import InstanceSpec
from repro.database import WorkloadSpec
from repro.serve import SamplerService, ShardedSamplerService
from repro.utils.rng import as_generator

#: Same steady-state family as E24: ν pinned to M keeps every instance in
#: one schedule shape, i.e. one affinity class — the worst case for a
#: sharding dispatcher (all load hashes to one shard unless the tier
#: spreads *batches*, which it does not: affinity is the contract), so
#: the sweep mixes machine counts to populate every shard.
BATCH_SIZE = 32
DEADLINE = 0.05


def _specs(count: int, universe: int = 512, total: int = 128):
    """A request mix spanning several affinity classes (n ∈ {2, 3, 4})."""
    return [
        InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=universe, total=total),
            n_machines=2 + (k % 3),
            nu=total,
            tag=f"e26-{k % 3}",
        )
        for k in range(count)
    ]


def _arrival_gaps(trace: str, count: int, rate_hz: float) -> list[float]:
    """Inter-arrival gaps for one offered-load trace.

    ``poisson`` draws i.i.d. exponential gaps; ``bursty`` modulates the
    rate sinusoidally over the trace (a compressed diurnal cycle: peaks
    at ~4× the trough) so the tier sees alternating saturation and idle.
    """
    rng = as_generator(123)
    if rate_hz <= 0:
        return [0.0] * count
    if trace == "poisson":
        return [float(g) for g in rng.exponential(1.0 / rate_hz, size=count)]
    phase = 2.0 * np.pi * np.arange(count) / max(count, 1)
    local_rate = rate_hz * (1.0 + 0.6 * np.sin(phase))  # 0.4×..1.6× the mean
    return [float(rng.exponential(1.0 / r)) for r in local_rate]


def _run_tier(specs, rng, shards, trace="poisson", rate_hz=0.0,
              deadline=DEADLINE, **kwargs):
    """Replay one arrival trace through the sharded tier."""
    gaps = _arrival_gaps(trace, len(specs), rate_hz)
    with ShardedSamplerService(
        shards=shards, batch_size=BATCH_SIZE, flush_deadline=deadline,
        rng=rng, include_probabilities=False, **kwargs
    ) as tier:
        start = time.perf_counter()
        for spec, gap in zip(specs, gaps):
            if gap > 0:
                time.sleep(gap)
            tier.submit(spec)
        rows = tier.rows()
        elapsed = time.perf_counter() - start
        return tier.telemetry(), rows, len(specs) / elapsed


def _run_unsharded(specs, rng, deadline=DEADLINE):
    """The single-process dispatcher reference on the same stream."""
    with SamplerService(
        batch_size=BATCH_SIZE, flush_deadline=deadline, workers=2,
        rng=rng, include_probabilities=False
    ) as service:
        start = time.perf_counter()
        for spec in specs:
            service.submit(spec)
        rows = service.rows()
        elapsed = time.perf_counter() - start
        return service.telemetry(), rows, len(specs) / elapsed


def _assert_rows_equivalent(sharded, reference):
    """1e-12 on fidelity, exact on every audit column (timing excluded)."""
    assert len(sharded) == len(reference)
    for mine, ref in zip(sharded, reference):
        assert mine["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
        for key, value in ref.items():
            if key not in ("fidelity", "wall_time_s"):
                assert mine[key] == value, (key, mine[key], value)


def _scenario_row(trace, load, shards, telemetry, sustained):
    return {
        "scenario": trace,
        "offered_load": load,
        "shards": shards,
        "batch_fill_ratio": telemetry["batch_fill_ratio"],
        "p99_latency": telemetry["p99_latency"],
        "shm_batches": telemetry.get("shm_batches", 0),
        "shm_fallback_batches": telemetry.get("shm_fallback_batches", 0),
        "instances_per_sec": sustained,
    }


def _report_rows(trajectory, report, claim):
    rows = [
        [
            r["scenario"],
            r["offered_load"],
            r["shards"],
            f"{r['batch_fill_ratio']:.2f}",
            f"{r['p99_latency'] * 1e3:.1f} ms",
            r["shm_batches"],
            f"{r['instances_per_sec']:.0f}/s",
        ]
        for r in trajectory
    ]
    report(
        "E26",
        claim,
        ["trace", "load", "shards", "fill", "p99", "shm", "rate"],
        rows,
        payload={"trajectory": trajectory, "batch_size": BATCH_SIZE,
                 "cores": len(os.sched_getaffinity(0))},
    )


def test_e26_sharded_serving(report):
    """Full sweep: {poisson, bursty} × shards {1, 2, 4} at full load,
    plus a moderate-rate cell per trace for the latency picture."""
    specs = _specs(96)
    trajectory = []

    # Unconditional bars on the widest tier first: equivalence + zero-copy.
    _, reference_rows, _ = _run_unsharded(specs, rng=9)
    for shards in (1, 2, 4):
        telemetry, rows, sustained = _run_tier(specs, rng=9, shards=shards)
        _assert_rows_equivalent(rows, reference_rows)
        assert telemetry["shm_batches"] > 0
        assert telemetry["shm_fallback_batches"] == 0
        trajectory.append(_scenario_row("poisson", "max", shards, telemetry, sustained))

    for trace in ("poisson", "bursty"):
        for shards in (1, 2, 4):
            telemetry, rows, sustained = _run_tier(
                specs[:48], rng=9, shards=shards, trace=trace, rate_hz=200.0
            )
            assert telemetry["completed"] == 48 and telemetry["failed"] == 0
            trajectory.append(
                _scenario_row(trace, "200/s", shards, telemetry, sustained)
            )

    _report_rows(
        trajectory,
        report,
        "sharded rows ≡ unsharded (1e-12); zero-copy handoff; "
        "≥2× rate at 4 shards on ≥4 cores",
    )


def test_e26_scaling_bar(report):
    """≥2× sustained throughput at 4 shards vs the single-process
    dispatcher — only meaningful with real parallelism underneath."""
    if len(os.sched_getaffinity(0)) < 4:
        pytest.skip("needs ≥4 CPU cores to express 4-shard parallelism")
    specs = _specs(128)
    _run_tier(specs[:16], rng=3, shards=4)  # warm plan/schedule caches
    _, _, single_rate = _run_unsharded(specs, rng=3)
    telemetry, rows, sharded_rate = _run_tier(specs, rng=3, shards=4)
    assert telemetry["completed"] == len(specs)
    _report_rows(
        [
            _scenario_row("scaling-ref", "max", 0, telemetry, single_rate),
            _scenario_row("scaling-4x", "max", 4, telemetry, sharded_rate),
        ],
        report,
        "4 shards sustain ≥2× the single-process dispatcher at full load",
    )
    assert sharded_rate >= 2.0 * single_rate, (
        f"4-shard tier {sharded_rate:.0f}/s below 2× single-process "
        f"{single_rate:.0f}/s"
    )


def test_e26_smoke_small(report):
    """Tiny-trace CI variant: equivalence and zero-copy bars hold, JSON
    artifact archived; no rate assertions (shared runners)."""
    specs = _specs(16, universe=256, total=64)
    _, reference_rows, single_rate = _run_unsharded(specs, rng=4, deadline=0.02)
    telemetry, rows, sustained = _run_tier(
        specs, rng=4, shards=2, deadline=0.02
    )
    _assert_rows_equivalent(rows, reference_rows)
    assert telemetry["exact"] == len(specs)
    assert telemetry["shards"] == 2
    assert telemetry["shm_batches"] > 0, "zero-copy path never used"
    assert telemetry["shm_fallback_batches"] == 0, "arena overflowed in smoke"
    assert telemetry["worker_restarts"] == 0
    trajectory = [
        _scenario_row("smoke-unsharded", "max", 0,
                      {"batch_fill_ratio": 1.0, "p99_latency": 0.0},
                      single_rate),
        _scenario_row("smoke-sharded", "max", 2, telemetry, sustained),
    ]
    _report_rows(
        trajectory,
        report,
        "sharded smoke (tiny trace): rows ≡ unsharded, zero-copy handoff",
    )


def test_e26_smoke_traced():
    """Cross-process tracing through the sharded tier: worker-side spans
    (build/execute/marshal, foreign pids) ship home over the pipe and
    land in ``benchmarks/_results/E26_trace.jsonl`` (the CI artifact);
    a per-phase summary is merged into ``E26.json`` under ``"spans"``.
    """
    import json

    from repro.analysis import archive_results, load_results, results_dir
    from repro.obs.metrics import percentile
    from repro.obs.trace import disable_tracing, enable_tracing

    specs = _specs(12, universe=256, total=64)
    sink = os.path.join(results_dir(), "E26_trace.jsonl")
    open(sink, "w", encoding="utf-8").close()
    enable_tracing(sink=sink)
    try:
        telemetry, rows, _ = _run_tier(specs, rng=7, shards=2, deadline=0.02)
    finally:
        disable_tracing()
    assert telemetry["completed"] == len(specs)
    assert telemetry["failed"] == 0

    with open(sink, encoding="utf-8") as handle:
        spans = [
            record
            for record in (json.loads(line) for line in handle if line.strip())
            if record.get("kind") == "span"
        ]
    names = {span["name"] for span in spans}
    assert {"request", "dispatch", "build", "execute", "marshal"} <= names
    worker_pids = {
        span["pid"] for span in spans if span["name"] in ("build", "execute")
    }
    assert worker_pids and all(pid != os.getpid() for pid in worker_pids), (
        "expected shard-worker spans from forked processes"
    )

    durations: dict[str, list[float]] = {}
    for span in spans:
        durations.setdefault(span["name"], []).append(float(span["duration_s"]))
    span_summary = {
        name: {
            "count": len(values),
            "p50_s": percentile(sorted(values), 0.50),
            "p99_s": percentile(sorted(values), 0.99),
        }
        for name, values in sorted(durations.items())
    }
    try:
        payload = load_results("E26")
    except FileNotFoundError:
        payload = {"claim": "sharded smoke (traced only)"}
    payload["spans"] = span_summary
    archive_results("E26", payload)


def test_e26_benchmark_hook(benchmark):
    """pytest-benchmark hook: steady-state full-load 2-shard serving."""
    specs = _specs(24, universe=256, total=64)
    _run_tier(specs[:8], rng=0, shards=2)  # warm caches

    def serve_once():
        telemetry, _, _ = _run_tier(specs, rng=0, shards=2)
        return telemetry

    telemetry = benchmark(serve_once)
    assert telemetry["completed"] == len(specs)
