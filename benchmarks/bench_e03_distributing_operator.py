"""E3 — Lemma 4.2: D from exactly 2n oracle calls, matching Eq. (5)."""

import numpy as np

from repro.core import DirectDistributingOperator, OracleDistributingOperator
from repro.database import QueryLedger, round_robin, zipf_dataset
from repro.qsim import RegisterLayout, StateVector, haar_random_state
from repro.utils.rng import as_generator


def test_e03_distributing_operator(benchmark, report):
    rows = []
    for n in (1, 2, 4, 8):
        db = round_robin(zipf_dataset(32, 40, rng=n), n_machines=n)
        ledger = QueryLedger(n)
        op = OracleDistributingOperator(db, ledger=ledger)
        layout = RegisterLayout.of(i=db.universe, s=db.nu + 1, w=2)
        state = haar_random_state(layout, as_generator(n))

        # Reference: the Eq. (5) rotation on the s = 0 slice.
        reference = state.copy()
        small = RegisterLayout.of(i=db.universe, w=2)
        op.apply(state)
        direct = DirectDistributingOperator(db)
        ref_small = StateVector.from_array(small, reference.as_array()[:, 0, :])
        direct.apply(ref_small)
        deviation = float(
            np.abs(state.as_array()[:, 0, :] - ref_small.as_array()).max()
        )

        rows.append([n, ledger.sequential_queries, 2 * n, f"{deviation:.2e}"])
        assert ledger.sequential_queries == 2 * n
        assert deviation < 1e-10

    report(
        "E03",
        "Lemma 4.2: one D costs exactly 2n sequential oracle calls and equals Eq. (5)",
        ["n", "oracle calls", "2n", "max |Δamp| vs Eq.(5)"],
        rows,
    )

    db = round_robin(zipf_dataset(64, 80, rng=0), n_machines=4)
    layout = RegisterLayout.of(i=db.universe, s=db.nu + 1, w=2)
    op = OracleDistributingOperator(db)

    def run_once():
        state = StateVector.zero(layout)
        op.apply(state)
        return state

    benchmark(run_once)
