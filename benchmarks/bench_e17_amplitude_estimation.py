"""E17 (extension) — unknown M: quantum counting at Heisenberg rate.

The paper assumes M public.  When it is not, BHMT amplitude estimation on
the same oracle access recovers it: error ~ 1/P for ~P iterate
applications.  We sweep the phase-register width and tabulate estimate,
error, the Thm 12 radius and the query bill, then run the end-to-end
estimate-then-sample pipeline.
"""

import numpy as np

from repro.analysis import fit_power_law
from repro.core import bhmt_error_bound, estimate_overlap, sample_with_estimated_m
from repro.database import DistributedDatabase, Multiset


def _db() -> DistributedDatabase:
    return DistributedDatabase.from_shards(
        [Multiset(64, {0: 1, 3: 1}), Multiset(64, {9: 2})], nu=4
    )


def test_e17_amplitude_estimation(benchmark, report):
    db = _db()
    true_a = db.initial_overlap()
    rows = []
    errors = []
    widths = (4, 6, 8, 10)
    for p_bits in widths:
        est = estimate_overlap(db, precision_bits=p_bits, shots=9, rng=0)
        error = abs(est.a_hat - true_a)
        errors.append(max(error, 1e-9))
        rows.append(
            [
                p_bits,
                f"{est.a_hat:.6f}",
                f"{error:.2e}",
                f"{bhmt_error_bound(true_a, p_bits):.2e}",
                est.sequential_queries,
                f"{est.m_hat:.2f}",
            ]
        )

    # Heisenberg scaling: error ~ 2^{-p} ⇒ slope ≈ −1 in P.
    fit = fit_power_law([2.0**p for p in widths], errors)
    assert fit.slope < -0.6, f"estimation not converging at Heisenberg-ish rate: {fit.slope}"

    est, result = sample_with_estimated_m(db, precision_bits=9, shots=9, rng=1)
    assert est.m_hat_rounded() == db.total_count
    assert result.fidelity > 0.995

    report(
        "E17",
        (
            f"Unknown M: quantum counting, error slope {fit.slope:.2f} in P "
            f"(Heisenberg); estimate-then-sample fidelity {result.fidelity:.6f}"
        ),
        ["precision bits", "â", "|â − a|", "Thm-12 radius", "oracle calls", "M̂"],
        rows,
        payload={"true_a": true_a, "slope": fit.slope,
                 "pipeline_fidelity": result.fidelity},
    )

    benchmark(lambda: estimate_overlap(db, precision_bits=8, shots=3, rng=2))
