"""Compare archived perf trajectories and flag throughput regressions.

CI uploads ``benchmarks/_results/E2x.json`` artifacts on every run; this
script diffs the current results against a baseline directory (a
previous run's downloaded artifact) and warns when any scenario's
sustained ``instances_per_sec`` drops by more than the threshold
(default 20%). Payloads carrying a ``"spans"`` metric snapshot (the
traced E24/E26 smokes) are diffed too: a span phase whose p99 duration
*grew* past the same threshold warns — a per-phase localization of the
regression the rate diff only shows in aggregate. When both directories
carry an ``analysis_report.json`` (the ``make analyze`` artifact), the
per-rule finding counts are diffed as well: growth warns, because the
lint gate already fails on unsuppressed findings, so growth means
suppressed debt accumulating. Warnings are advisory — shared runners
are not clocks — so the exit code is 0 unless ``--strict`` is passed.

Usage::

    python benchmarks/compare_results.py --baseline /path/to/old/_results
    python benchmarks/compare_results.py --baseline old/ --current new/ \
        --threshold 0.2 --strict E23 E24 E26
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Experiments whose payloads carry a throughput trajectory (or, for
#: E27, a scenario-matrix row list).
DEFAULT_EXPERIMENTS = ("E23", "E24", "E25", "E26", "E27")
DEFAULT_THRESHOLD = 0.2

#: Trajectory keys that identify a scenario row, in precedence order.
_SCENARIO_KEYS = ("scenario", "family", "label", "name")

#: Secondary keys that split one scenario into distinct cells — the
#: matrix-shaped artifacts (E27) key cells by execution regime too.
_CELL_KEYS = ("model", "backend", "offered_load", "shards", "flush_deadline")


def _scenario_key(row: dict) -> str:
    """A stable identity for one trajectory/matrix row across runs."""
    parts = [str(row[k]) for k in _SCENARIO_KEYS if k in row]
    for extra in _CELL_KEYS:
        if extra in row:
            parts.append(f"{extra}={row[extra]}")
    return "|".join(parts) if parts else "<unlabelled>"


def extract_rates(payload: dict) -> dict[str, float]:
    """Map scenario key → instances/sec for every trajectory/matrix row.

    Reads ``payload["trajectory"]`` (the serving benches) and
    ``payload["matrix"]`` (the scenario-matrix artifact) with one key
    scheme, so a matrix cell that slows down across commits warns just
    like a serving scenario.
    """
    rates: dict[str, float] = {}
    for row in list(payload.get("trajectory", [])) + list(payload.get("matrix", [])):
        rate = row.get("instances_per_sec")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[_scenario_key(row)] = float(rate)
    return rates


def extract_fills(payload: dict) -> dict[str, float]:
    """Map scenario key → batch-fill ratio for rows that carry one.

    Fill is a higher-is-better column (1.0 = the packer always filled
    the stacked tensor): a *drop* past the threshold warns, because it
    means the serving tier started padding or fragmenting batches it
    used to pool.  Reads ``batch_fill_ratio`` (the serving trajectories)
    and ``ragged_fill`` (the E23 ragged cells) under one key scheme.
    """
    fills: dict[str, float] = {}
    for row in list(payload.get("trajectory", [])) + list(payload.get("matrix", [])):
        for column in ("batch_fill_ratio", "ragged_fill"):
            fill = row.get(column)
            if isinstance(fill, (int, float)) and fill > 0:
                fills[f"{_scenario_key(row)}|{column}"] = float(fill)
    return fills


def extract_ragged_metrics(payload: dict) -> dict[str, float]:
    """Higher-is-better scalars from an E24 ``"ragged_trickle"`` block.

    ``ragged_rate`` (instances/sec on the mixed-ν stream), ``speedup``
    (ragged over the padded path) and ``trickle_fill_ragged`` (pool fill
    under trickle load) each warn when they *drop* past the threshold.
    """
    block = payload.get("ragged_trickle") or {}
    metrics: dict[str, float] = {}
    for key in ("ragged_rate", "speedup", "trickle_fill_ragged"):
        value = block.get(key)
        if isinstance(value, (int, float)) and value > 0:
            metrics[f"ragged_trickle.{key}"] = float(value)
    return metrics


def extract_span_p99s(payload: dict) -> dict[str, float]:
    """Map span phase name → p99 seconds from a ``"spans"`` summary.

    The traced E24/E26 smokes merge ``{"spans": {name: {count, p50_s,
    p99_s}}}`` into their artifacts; phases with a non-positive or
    missing p99 are skipped (nothing meaningful to diff).
    """
    p99s: dict[str, float] = {}
    for name, summary in (payload.get("spans") or {}).items():
        if not isinstance(summary, dict):
            continue
        p99 = summary.get("p99_s")
        if isinstance(p99, (int, float)) and p99 > 0:
            p99s[str(name)] = float(p99)
    return p99s


def compare_payloads(
    baseline: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Warnings for every scenario whose rate regressed past the threshold."""
    base_rates = extract_rates(baseline)
    cur_rates = extract_rates(current)
    warnings = []
    for key, base in sorted(base_rates.items()):
        cur = cur_rates.get(key)
        if cur is None:
            warnings.append(f"scenario missing from current run: {key}")
        elif cur < (1.0 - threshold) * base:
            drop = 100.0 * (1.0 - cur / base)
            warnings.append(
                f"throughput regression {drop:.0f}% in {key}: "
                f"{base:.0f}/s -> {cur:.0f}/s"
            )
    # Fill ratios and the ragged-trickle metrics are higher-is-better
    # like rates: a drop past the threshold warns.  A column missing
    # from the current run is not flagged — older baselines predate it.
    for label, extractor in (
        ("fill-ratio", extract_fills),
        ("ragged-metric", extract_ragged_metrics),
    ):
        base_values = extractor(baseline)
        cur_values = extractor(current)
        for key, base in sorted(base_values.items()):
            cur = cur_values.get(key)
            if cur is not None and cur < (1.0 - threshold) * base:
                drop = 100.0 * (1.0 - cur / base)
                warnings.append(
                    f"{label} regression {drop:.0f}% in {key}: "
                    f"{base:.2f} -> {cur:.2f}"
                )
    # Span-phase durations regress the other way: growth is bad.  Same
    # threshold, same advisory character.  A phase missing from the
    # current run is not flagged — traced smokes are optional per run.
    base_spans = extract_span_p99s(baseline)
    cur_spans = extract_span_p99s(current)
    for name, base in sorted(base_spans.items()):
        cur = cur_spans.get(name)
        if cur is not None and cur > (1.0 + threshold) * base:
            growth = 100.0 * (cur / base - 1.0)
            warnings.append(
                f"span p99 regression +{growth:.0f}% in phase {name!r}: "
                f"{base * 1e3:.3f}ms -> {cur * 1e3:.3f}ms"
            )
    return warnings


#: The static-analysis artifact `make analyze` writes next to the E2x
#: payloads; finding-count *growth* between runs warns like a perf
#: regression (suppressed debt creeping in under the CI gate's radar).
ANALYSIS_REPORT = "analysis_report.json"


def compare_analysis_reports(baseline: dict, current: dict) -> list[str]:
    """Warnings for every rule whose finding count grew since baseline.

    Counts come from the report's ``counts`` map (rule id → findings).
    Any growth warns — including a rule appearing for the first time —
    because the lint gate already fails CI on *unsuppressed* findings,
    so growth here means newly *suppressed* debt accumulating silently.
    Shrinkage is progress and stays quiet.
    """
    base_counts = dict(baseline.get("counts") or {})
    cur_counts = dict(current.get("counts") or {})
    warnings = []
    for rule_id in sorted(set(base_counts) | set(cur_counts)):
        base = int(base_counts.get(rule_id, 0))
        cur = int(cur_counts.get(rule_id, 0))
        if cur > base:
            warnings.append(
                f"analysis finding growth in {rule_id}: {base} -> {cur}"
            )
    base_total = int(baseline.get("total", 0))
    cur_total = int(current.get("total", 0))
    if cur_total > base_total and not warnings:
        warnings.append(
            f"analysis finding growth: {base_total} -> {cur_total}"
        )
    return warnings


def _load(directory: str, experiment_id: str) -> dict | None:
    path = os.path.join(directory, f"{experiment_id}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _load_file(directory: str, filename: str) -> dict | None:
    path = os.path.join(directory, filename)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_directories(
    baseline_dir: str,
    current_dir: str,
    experiments=DEFAULT_EXPERIMENTS,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Diff every experiment present in *both* directories."""
    warnings = []
    for experiment_id in experiments:
        baseline = _load(baseline_dir, experiment_id)
        current = _load(current_dir, experiment_id)
        if baseline is None or current is None:
            continue  # nothing to compare — new experiment or fresh baseline
        warnings.extend(
            f"[{experiment_id}] {w}"
            for w in compare_payloads(baseline, current, threshold)
        )
    base_report = _load_file(baseline_dir, ANALYSIS_REPORT)
    cur_report = _load_file(current_dir, ANALYSIS_REPORT)
    if base_report is not None and cur_report is not None:
        warnings.extend(
            f"[analysis] {w}"
            for w in compare_analysis_reports(base_report, cur_report)
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*", default=None,
                        help=f"experiment ids (default: {' '.join(DEFAULT_EXPERIMENTS)})")
    parser.add_argument("--baseline", required=True,
                        help="directory holding the baseline *.json results")
    parser.add_argument("--current",
                        default=os.path.join(os.path.dirname(__file__), "_results"),
                        help="directory holding the current results "
                             "(default: benchmarks/_results)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fractional drop that counts as a regression "
                             "(default: 0.2 = 20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any regression is found")
    args = parser.parse_args(argv)

    experiments = tuple(args.experiments) or DEFAULT_EXPERIMENTS
    warnings = compare_directories(
        args.baseline, args.current, experiments, args.threshold
    )
    if warnings:
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        return 1 if args.strict else 0
    print(f"no throughput regressions beyond {args.threshold:.0%} "
          f"across {', '.join(experiments)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
