"""E7 — Lemma 5.6: |T| = C(N, m_k), verified by exhaustive enumeration."""

from math import comb

from repro.lowerbound import HardInputFamily, lemma_5_6_size, make_hard_input


def test_e07_hard_input_counting(benchmark, report):
    rows = []
    for n_univ, m_k in [(5, 2), (6, 2), (6, 3), (7, 3), (8, 2)]:
        base = make_hard_input(
            universe=n_univ, n_machines=2, k=0, support_size=m_k, multiplicity=2
        )
        family = HardInputFamily(base, k=0)
        members = list(family.enumerate_members())
        distinct = {
            tuple(member.machine(0).shard.support()) for member in members
        }
        rows.append(
            [n_univ, m_k, len(members), len(distinct), comb(n_univ, m_k)]
        )
        assert len(members) == comb(n_univ, m_k) == family.size()
        assert len(distinct) == len(members), "members must be pairwise distinct"
        assert lemma_5_6_size(n_univ, m_k) == comb(n_univ, m_k)

    report(
        "E07",
        "Lemma 5.6: hard-input family size equals C(N, m_k) (exhaustive check)",
        ["N", "m_k", "enumerated", "distinct", "C(N, m_k)"],
        rows,
    )

    base = make_hard_input(universe=8, n_machines=2, k=0, support_size=3, multiplicity=2)
    family = HardInputFamily(base, k=0)
    benchmark(lambda: sum(1 for _ in family.enumerate_members()))
