"""E13 — Section 3 remark: dynamic updates cost one U/U† each, and the
refreshed oracle samples the refreshed data exactly."""

import numpy as np

from repro.core import sample_sequential
from repro.database import (
    DistributedDatabase,
    Machine,
    Multiset,
    random_update_stream,
)


def _fresh_db() -> DistributedDatabase:
    machines = [
        Machine(Multiset(12, {0: 1, 1: 1, 2: 1}), capacity=4, name="m0"),
        Machine(Multiset(12, {6: 2}), capacity=4, name="m1"),
    ]
    return DistributedDatabase(machines, nu=8)


def test_e13_dynamic_updates(benchmark, report):
    db = _fresh_db()
    stream = random_update_stream(db, length=12, rng=0)
    rows = []
    applied_total = 0
    while stream.pending:
        stream.apply_next(3)
        applied_total += 3
        result = sample_sequential(db, backend="subspace")
        deviation = float(
            np.abs(result.output_probabilities - db.sampling_distribution()).max()
        )
        rows.append(
            [
                applied_total,
                stream.total_update_cost(),
                db.total_count,
                f"{result.fidelity:.12f}",
                f"{deviation:.2e}",
            ]
        )
        assert stream.total_update_cost() == applied_total
        assert result.exact
        assert deviation < 1e-9

    report(
        "E13",
        "§3 dynamic remark: each ±1 multiplicity = one U/U† oracle update; resampling stays exact",
        ["updates applied", "U/U† charged", "M after", "fidelity", "max |Δprob|"],
        rows,
    )

    def update_and_resample():
        fresh = _fresh_db()
        s = random_update_stream(fresh, length=6, rng=1)
        s.apply_all()
        return sample_sequential(fresh, backend="subspace")

    benchmark(update_and_resample)
