"""E6 — zero-error amplitude amplification vs plain Grover.

The paper's algorithms are exact because of the BHMT final partial
iterate.  This bench sweeps the overlap and reports the failure
probability of the best fixed-iterate Grover schedule next to the exact
schedule's (identically zero).
"""

import numpy as np

from repro.core import plain_grover_plan, solve_plan, success_probability


def test_e06_exact_aa(benchmark, report):
    rows = []
    worst_plain = 0.0
    for overlap in (0.001, 0.004, 0.013, 0.05, 0.11, 0.23, 0.4, 0.77):
        exact = solve_plan(overlap)
        plain = plain_grover_plan(overlap)
        exact_failure = 1.0 - success_probability(exact)
        plain_failure = 1.0 - success_probability(plain)
        worst_plain = max(worst_plain, plain_failure)
        rows.append(
            [
                overlap,
                exact.grover_reps,
                int(exact.needs_final),
                f"{exact_failure:.2e}",
                f"{plain_failure:.2e}",
            ]
        )
        assert exact_failure < 1e-10

    assert worst_plain > 1e-4, "plain Grover should visibly miss somewhere"

    report(
        "E06",
        "BHMT Thm 4 schedule: exact landing (failure = 0) vs plain Grover's residual",
        ["overlap a", "m", "final step?", "exact failure", "plain failure"],
        rows,
        payload={"worst_plain_failure": worst_plain},
    )

    benchmark(lambda: solve_plan(0.0007))
