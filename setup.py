"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
offline environment (no ``wheel`` package) can still do
``pip install -e . --no-build-isolation`` through the legacy
``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Optimal quantum sampling on distributed databases' "
        "(Chen, Liu, Yao; SPAA 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    extras_require={
        "test": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"],
        "analysis": ["networkx>=3"],
    },
)
