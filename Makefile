# Developer entry points. `make test` is the tier-1 gate CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint analyze bench-smoke bench e22 bench-batch bench-batch-smoke \
	bench-serve bench-serve-smoke bench-api bench-serve-sharded \
	bench-serve-sharded-smoke bench-scenarios bench-scenarios-smoke

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed — skipping lint"; \
	fi

# The project invariant analyzer (repro.analysis.lint): REP001-REP008
# over the whole tree, failing on any unsuppressed finding.  Writes the
# JSON report CI archives and compare_results.py diffs between runs.
analyze:
	$(PYTHON) -m repro lint src tests benchmarks examples \
		--format json --output benchmarks/_results/analysis_report.json
	$(PYTHON) -m repro lint src tests benchmarks examples

# Fast pass over the experiment harness: every bench executes once,
# pytest-benchmark timing loops disabled.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e16_simulator_kernels.py \
		benchmarks/bench_e22_backend_scaling.py -q --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

e22:
	$(PYTHON) -m pytest benchmarks/bench_e22_backend_scaling.py -q --benchmark-disable

# E23: the stacked engines vs the per-instance loop — classes at any
# scale, the (B, N, 2) stacked-dense subspace backend on the medium-N
# grid, and the CSR ragged substrate on mixed-ν batches.  Full run
# asserts the ≥5× (classes), ≥3× (dense) and ≥2×-over-padded (ragged)
# instances/sec bars at B = 256; the smoke variant (tiny B, all
# backends, no throughput assertion) is what CI executes.
bench-batch:
	$(PYTHON) -m pytest benchmarks/bench_e23_batched_throughput.py -q --benchmark-disable

bench-batch-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e23_batched_throughput.py -q \
		--benchmark-disable -k smoke

# E24: the long-lived serving loop vs the offline batched driver.  Full
# run asserts the ≥0.8× throughput bar and the deadline-bounded p99; the
# smoke variants (tiny trace + the mixed-ν ragged trickle, whose ≥2×
# and ≥0.9-fill bars self-gate on ≥4 cores) are what CI executes,
# alongside a CLI trace through `python -m repro serve`.
bench-serve:
	$(PYTHON) -m pytest benchmarks/bench_e24_serving.py -q --benchmark-disable \
		-k "not hook"

bench-serve-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e24_serving.py -q \
		--benchmark-disable -k smoke
	$(PYTHON) -m repro serve --max-requests 32 --universe 256 --total 64 \
		--machines 2 --batch-size 8 --flush-deadline 0.02

# E26: the sharded multi-process serving tier vs the single-process
# dispatcher.  Full run sweeps {poisson, bursty} arrival traces across
# shards {1, 2, 4} and asserts row equivalence + the zero-copy bar; the
# ≥2× scaling bar self-skips below 4 CPU cores.  The smoke variant
# (tiny trace, shards=2) is what CI executes, alongside a CLI trace
# through `python -m repro serve --shards`.
bench-serve-sharded:
	$(PYTHON) -m pytest benchmarks/bench_e26_sharded_serving.py -q \
		--benchmark-disable -k "not hook"

bench-serve-sharded-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e26_sharded_serving.py -q \
		--benchmark-disable -k smoke
	$(PYTHON) -m repro serve --max-requests 16 --universe 256 --total 64 \
		--machines 2 --batch-size 8 --flush-deadline 0.02 --shards 2

# E27: the adversarial-scenario matrix — every registered scenario
# (machine loss on replicated/disjoint shards, kill/revive schedules,
# churn, skew, topology growth) served across the unsharded and 2-shard
# tiers, each cell gated on instance-replay equivalence (1e-12) and the
# exact fault-fidelity identities.  The smoke variant (four scenario
# families, short trace) is what CI executes, alongside a CLI trace
# through `python -m repro serve --scenario`.
bench-scenarios:
	$(PYTHON) -m pytest benchmarks/bench_e27_scenario_matrix.py -q \
		--benchmark-disable -k "not hook"

bench-scenarios-smoke:
	$(PYTHON) -m pytest benchmarks/bench_e27_scenario_matrix.py -q \
		--benchmark-disable -k smoke
	$(PYTHON) -m repro serve --scenario disjoint-loss --max-requests 8 \
		--batch-size 4

# E25: the repro.api front door — the planner routes one tiny request
# grid through all four execution strategies (instance, stacked, fanout,
# served) and asserts row agreement.  Cheap enough that CI runs it whole.
bench-api:
	$(PYTHON) -m pytest benchmarks/bench_e25_api_pipeline.py -q \
		--benchmark-disable
