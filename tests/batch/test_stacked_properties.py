"""Property tests: StackedClassVector on degenerate batches.

The satellite contract: ``stack``/``extract`` (through the trusted
``ClassVector.from_parts`` path) and ``transfer_element`` behave on the
edges the randomized grids rarely hit — single-instance stacks, mixed
widths where an instance's entire padded tail is empty (ν = 0 instances:
one class), and ``N = 1`` universes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import StackedClassVector
from repro.qsim import ClassVector
from repro.utils.rng import as_generator

#: One instance: (element→class map, class count), sizes kept tiny so the
#: hypothesis grid explores shapes, not arithmetic.
instance_shapes = st.tuples(
    st.integers(min_value=1, max_value=9),   # N
    st.integers(min_value=1, max_value=6),   # ν + 1  (1 ⇒ a ν=0 instance)
)


def build_instance(rng: np.random.Generator, n: int, n_classes: int) -> ClassVector:
    element_classes = rng.integers(0, n_classes, size=n).astype(np.int64)
    amps = rng.normal(size=(n_classes, 2)) + 1j * rng.normal(size=(n_classes, 2))
    state = ClassVector(element_classes, n_classes, amps=amps)
    return state


@st.composite
def batches(draw):
    shapes = draw(st.lists(instance_shapes, min_size=1, max_size=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return shapes, seed


class TestStackExtractRoundTrip:
    @given(batches())
    @settings(max_examples=60, deadline=None)
    def test_stack_then_extract_is_identity(self, batch):
        """stack → extract returns every instance cell for cell, at any
        mix of widths (padding classes carry multiplicity 0)."""
        shapes, seed = batch
        rng = as_generator(seed)
        singles = [build_instance(rng, n, c) for n, c in shapes]
        stacked = StackedClassVector.stack(singles)
        assert stacked.batch_size == len(singles)
        assert stacked.width == max(c for _, c in shapes)
        for b, single in enumerate(singles):
            extracted = stacked.extract(b)
            assert extracted.n_classes == single.n_classes
            assert extracted.n_elements == single.n_elements
            assert (extracted.class_amplitudes() == single.class_amplitudes()).all()
            assert (extracted.class_sizes == single.class_sizes).all()
            assert (extracted.element_classes == single.element_classes).all()
            # Padded tail (if any) holds only empty classes.
            assert (stacked.class_sizes[b, single.n_classes:] == 0).all()

    @given(batches())
    @settings(max_examples=60, deadline=None)
    def test_norms_and_probabilities_survive_stacking(self, batch):
        shapes, seed = batch
        rng = as_generator(seed)
        singles = [build_instance(rng, n, c) for n, c in shapes]
        stacked = StackedClassVector.stack(singles)
        for b, single in enumerate(singles):
            assert stacked.norms()[b] == pytest.approx(single.norm(), abs=1e-12)
            np.testing.assert_allclose(
                stacked.output_probabilities(b),
                single.marginal_probabilities("i"),
                atol=1e-12,
            )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_single_instance_stack_is_transparent(self, n_classes, seed):
        """B = 1: the stack is exactly its one instance (no padding)."""
        rng = as_generator(seed)
        single = build_instance(rng, 7, n_classes)
        stacked = StackedClassVector.stack([single])
        assert stacked.batch_size == 1
        assert stacked.width == n_classes
        assert (stacked.extract(0).class_amplitudes() == single.class_amplitudes()).all()

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_n_equals_one_instances(self, n_classes, seed):
        """N = 1 universes stack, extract and normalize like any other."""
        rng = as_generator(seed)
        singles = [build_instance(rng, 1, n_classes), build_instance(rng, 5, 2)]
        stacked = StackedClassVector.stack(singles)
        assert stacked.n_elements(0) == 1
        extracted = stacked.extract(0)
        assert extracted.n_elements == 1
        assert (extracted.class_amplitudes() == singles[0].class_amplitudes()).all()
        uniform = StackedClassVector.uniform(
            [s.element_classes for s in singles], [s.n_classes for s in singles]
        )
        np.testing.assert_allclose(uniform.norms(), np.ones(2), atol=1e-12)


class TestFromPartsContract:
    """extract() rides ClassVector.from_parts — shared, copy-on-write."""

    @given(batches())
    @settings(max_examples=40, deadline=None)
    def test_extracted_states_share_class_maps(self, batch):
        shapes, seed = batch
        rng = as_generator(seed)
        singles = [build_instance(rng, n, c) for n, c in shapes]
        stacked = StackedClassVector.stack(singles)
        for b in range(stacked.batch_size):
            extracted = stacked.extract(b)
            # from_parts shares (not copies) the map — the O(N) rebuild
            # the fast path exists to avoid.
            assert extracted.element_classes is stacked._element_classes[b]

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_transfer_element_on_extract_never_corrupts_the_stack(
        self, n_classes, seed
    ):
        """Copy-on-write: a dynamic update on an extracted state must not
        write through to the stacked tensor's shared class map."""
        rng = as_generator(seed)
        singles = [build_instance(rng, 6, n_classes) for _ in range(2)]
        stacked = StackedClassVector.stack(singles)
        before_map = stacked._element_classes[0].copy()
        before_sizes = stacked.class_sizes.copy()
        extracted = stacked.extract(0)
        element = int(rng.integers(0, extracted.n_elements))
        target = int(rng.integers(0, n_classes))
        extracted.transfer_element(element, target)
        assert int(extracted.element_classes[element]) == target
        assert (stacked._element_classes[0] == before_map).all()
        assert (stacked.class_sizes == before_sizes).all()

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_transfer_element_roundtrip_restores_state(self, seed):
        rng = as_generator(seed)
        single = build_instance(rng, 8, 4)
        reference = single.copy()
        state = single.copy()
        element = int(rng.integers(0, 8))
        original = int(state.element_classes[element])
        target = (original + 1) % 4
        state.transfer_element(element, target)
        state.transfer_element(element, original)
        assert (state.element_classes == reference.element_classes).all()
        assert (state.class_sizes == reference.class_sizes).all()
        assert state.norm() == pytest.approx(reference.norm(), abs=1e-12)


class TestMixedWidthPadding:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_nu_zero_instance_pads_against_wide_sibling(self, seed):
        """A one-class (ν = 0) instance next to a wide one: the whole
        padded tail is empty classes and stays inert under the batched
        operator surface."""
        rng = as_generator(seed)
        narrow = build_instance(rng, 4, 1)   # one class only
        wide = build_instance(rng, 6, 5)
        stacked = StackedClassVector.stack([narrow, wide])
        assert stacked.width == 5
        assert (stacked.class_sizes[0, 1:] == 0).all()
        # Identity on the padding, real work on live cells: apply a
        # global phase and a flag phase and re-extract.
        stacked.apply_global_phase(-1.0)
        stacked.apply_phase_slice("w", 0, np.exp(0.4j))
        for b, single in enumerate((narrow, wide)):
            single.apply_global_phase(-1.0)
            single.apply_phase_slice("w", 0, np.exp(0.4j))
            np.testing.assert_allclose(
                stacked.extract(b).class_amplitudes(),
                single.class_amplitudes(),
                atol=1e-12,
            )
