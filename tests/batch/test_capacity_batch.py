"""Capacity-aware flagged rounds inside the stacked batch engine.

The ROADMAP open item: batched runs of mostly-empty topologies should
shed the same ``Σ_j t_j`` the per-instance
``ParallelSampler(skip_zero_capacity=True)`` already does — per
instance, with identical ledgers, schedules and output state.
"""

import numpy as np
import pytest

from repro import sample_many
from repro.api import SamplingRequest
from repro.batch import execute_sampling_batch
from repro.core import ParallelSampler, SequentialSampler
from repro.database import DistributedDatabase, Multiset
from repro.serve import SamplerService
from repro.analysis import InstanceSpec
from repro.database import WorkloadSpec


@pytest.fixture
def mostly_empty_db() -> DistributedDatabase:
    """5 machines, only two hold data (κ = 0 elsewhere)."""
    shards = [
        Multiset(16, {0: 1, 1: 1}),
        Multiset.empty(16),
        Multiset(16, {5: 2}),
        Multiset.empty(16),
        Multiset.empty(16),
    ]
    return DistributedDatabase.from_shards(shards, nu=2)


@pytest.fixture
def full_db() -> DistributedDatabase:
    """3 machines, all nonempty — the restriction must be a no-op."""
    shards = [
        Multiset(16, {0: 2, 1: 1}),
        Multiset(16, {3: 1, 4: 1}),
        Multiset(16, {7: 2}),
    ]
    return DistributedDatabase.from_shards(shards, nu=4)


class TestBatchedRestriction:
    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_ledger_matches_per_instance_skip(self, mostly_empty_db, model):
        batched = execute_sampling_batch(
            [mostly_empty_db], model=model, skip_zero_capacity=True
        )[0]
        sampler_cls = SequentialSampler if model == "sequential" else ParallelSampler
        legacy = sampler_cls(
            mostly_empty_db, backend="classes", skip_zero_capacity=True
        ).run()
        assert batched.ledger.summary() == legacy.ledger.summary()
        assert batched.schedule.fingerprint() == legacy.schedule.fingerprint()

    def test_skipped_machines_never_charged(self, mostly_empty_db):
        result = execute_sampling_batch(
            [mostly_empty_db], skip_zero_capacity=True
        )[0]
        per_machine = result.ledger.per_machine()
        assert per_machine[1] == per_machine[3] == per_machine[4] == 0
        assert per_machine[0] > 0 and per_machine[2] > 0

    def test_total_work_drops_but_state_unchanged(self, mostly_empty_db):
        full, restricted = (
            execute_sampling_batch(
                [mostly_empty_db], model="parallel", skip_zero_capacity=skip
            )[0]
            for skip in (False, True)
        )
        # Rounds are n-free (Theorem 4.5) and cannot drop; Σ_j t_j does:
        # 2 active machines of 5 → exactly 2/5 of the unrestricted bill.
        assert restricted.parallel_rounds == full.parallel_rounds
        assert restricted.sequential_queries * 5 == full.sequential_queries * 2
        np.testing.assert_allclose(
            restricted.output_probabilities, full.output_probabilities, atol=1e-12
        )
        assert restricted.exact

    def test_all_nonempty_is_a_noop(self, full_db):
        plain, skipping = (
            execute_sampling_batch([full_db], skip_zero_capacity=skip)[0]
            for skip in (False, True)
        )
        assert plain.ledger.summary() == skipping.ledger.summary()
        assert plain.schedule.fingerprint() == skipping.schedule.fingerprint()

    def test_mixed_batch_restricts_per_instance(self, mostly_empty_db, full_db):
        results = execute_sampling_batch(
            [mostly_empty_db, full_db], skip_zero_capacity=True
        )
        assert results[0].ledger.per_machine()[1] == 0
        assert all(t > 0 for t in results[1].ledger.per_machine())
        assert all(r.exact for r in results)


class TestCapacityPolicySurface:
    """The restriction is reachable through the front door and the service."""

    def test_request_capacity_policy_reaches_the_batch(self, mostly_empty_db):
        results = sample_many(
            [
                SamplingRequest(
                    database=mostly_empty_db,
                    model="parallel",
                    capacity="skip_empty",
                    batchable=True,
                )
            ]
        )
        legacy = ParallelSampler(
            mostly_empty_db, backend="classes", skip_zero_capacity=True
        ).run()
        assert results.strategies() == ["stacked"]
        assert results[0].sampling.ledger.summary() == legacy.ledger.summary()

    def test_service_capacity_policy(self, mostly_empty_db):
        # Serve the same topology via a spec that rebuilds it: use a
        # sparse workload on 5 machines where round-robin leaves some
        # machines empty is fiddly — submit the live stream instead.
        from repro.database.dynamic import UpdateStream

        stream = UpdateStream(mostly_empty_db, [])
        with SamplerService(
            model="parallel", batch_size=2, flush_deadline=0.01,
            capacity="skip_empty",
        ) as service:
            future = service.submit_live(stream)
            result = future.result(timeout=60)
        legacy = ParallelSampler(
            mostly_empty_db, backend="classes", skip_zero_capacity=True
        ).run()
        assert result.ledger.summary() == legacy.ledger.summary()

    def test_run_batched_capacity_parameter(self, mostly_empty_db):
        # The driver shim routes the same policy; exercised via specs in
        # the sweep: a single-machine-empty partition is easiest made by
        # spec'ing more machines than occupied keys.
        from repro.batch import run_batched

        spec = InstanceSpec(
            workload=WorkloadSpec.of("single", universe=16, key=3, multiplicity=2),
            n_machines=4,
            strategy="disjoint",
        )
        restricted = run_batched([spec], rng=0, capacity="skip_empty")
        full = run_batched([spec], rng=0)
        assert restricted.rows[0]["exact"] and full.rows[0]["exact"]
        assert (
            restricted.rows[0]["sequential_queries"]
            < full.rows[0]["sequential_queries"]
        )
