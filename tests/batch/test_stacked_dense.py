"""Stacked subspace backend: bit-identical to per-instance SubspaceBackend.

The acceptance bar: a stacked ``(B, N, 2)`` run reproduces per-instance
``subspace`` sampling **bit for bit** for the same databases — fidelity,
output distribution, final state, ledger and schedule — including
mixed-``N`` batches (inert padding) and the capacity-aware restriction.
"""

import numpy as np
import pytest

from repro.batch import (
    StackedSubspaceVector,
    auto_stacked_backend,
    execute_sampling_batch,
    stacked_backend_names,
)
from repro.config import CONFIG, strict_mode
from repro.core import ParallelSampler, SequentialSampler
from repro.database import DistributedDatabase
from repro.errors import SimulationLimitError, ValidationError
from repro.utils.rng import as_generator


def random_database(rng: np.random.Generator, universe: int | None = None) -> DistributedDatabase:
    universe = int(rng.integers(16, 193)) if universe is None else universe
    n_machines = int(rng.integers(1, 5))
    nu_data = int(rng.integers(1, 7))
    support = int(rng.integers(1, max(2, universe // 2)))
    joint = np.zeros(universe, dtype=np.int64)
    keys = rng.choice(universe, size=support, replace=False)
    joint[keys] = rng.integers(1, nu_data + 1, size=support)
    counts = np.zeros((n_machines, universe), dtype=np.int64)
    for i in np.flatnonzero(joint):
        counts[:, i] = rng.multinomial(joint[i], np.full(n_machines, 1.0 / n_machines))
    nu = int(joint.max()) + int(rng.integers(0, 3))
    return DistributedDatabase.from_count_matrix(counts, nu=nu)


def assert_bit_identical(result, reference, backend="subspace"):
    """Every float the row carries — and the full state — matches with ==."""
    assert result.fidelity == reference.fidelity
    assert (result.output_probabilities == reference.output_probabilities).all()
    assert (result.final_state.as_array() == reference.final_state.as_array()).all()
    assert result.ledger.summary() == reference.ledger.summary()
    assert result.ledger.per_machine() == reference.ledger.per_machine()
    assert result.schedule.fingerprint() == reference.schedule.fingerprint()
    assert result.plan == reference.plan
    assert result.backend == backend


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_grid_matches_per_instance_subspace(self, seed):
        rng = as_generator(2000 * seed)
        dbs = [random_database(rng) for _ in range(9)]
        batched = execute_sampling_batch(dbs, model="sequential", backend="subspace")
        for db, result in zip(dbs, batched):
            reference = SequentialSampler(db, backend="subspace").run()
            assert_bit_identical(result, reference)

    def test_mixed_universes_pad_inertly(self):
        """Different N in one batch: padding must not perturb any instance."""
        rng = as_generator(99)
        dbs = [random_database(rng, universe=u) for u in (17, 64, 40, 64, 128)]
        batched = execute_sampling_batch(dbs, model="sequential", backend="subspace")
        for db, result in zip(dbs, batched):
            reference = SequentialSampler(db, backend="subspace").run()
            assert_bit_identical(result, reference)

    def test_capacity_restriction_matches_per_instance(self):
        counts = np.zeros((4, 48), dtype=np.int64)
        counts[0, :6] = 2
        counts[2, :6] = 1
        db = DistributedDatabase.from_count_matrix(counts, nu=4)
        [restricted] = execute_sampling_batch(
            [db], model="sequential", backend="subspace", skip_zero_capacity=True
        )
        reference = SequentialSampler(
            db, backend="subspace", skip_zero_capacity=True
        ).run()
        assert_bit_identical(restricted, reference)
        assert restricted.sequential_queries == reference.sequential_queries

    def test_strict_mode_run_stays_exact(self):
        rng = as_generator(5)
        dbs = [random_database(rng) for _ in range(3)]
        with strict_mode():
            results = execute_sampling_batch(
                dbs, model="sequential", backend="subspace"
            )
        assert all(r.exact for r in results)

    def test_include_probabilities_false_skips_gather(self):
        rng = as_generator(6)
        [result] = execute_sampling_batch(
            [random_database(rng)],
            model="sequential",
            backend="subspace",
            include_probabilities=False,
        )
        assert result.output_probabilities is None
        assert result.exact


class TestSyncedBitIdentity:
    """The (B, N, 2) synced-layout stack vs per-instance ParallelSampler."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_grid_matches_per_instance_synced(self, seed):
        rng = as_generator(4000 * seed)
        dbs = [random_database(rng) for _ in range(7)]
        batched = execute_sampling_batch(dbs, model="parallel", backend="synced")
        for db, result in zip(dbs, batched):
            reference = ParallelSampler(db, backend="synced").run()
            assert_bit_identical(result, reference, backend="synced")

    def test_mixed_universes_pad_inertly(self):
        rng = as_generator(101)
        dbs = [random_database(rng, universe=u) for u in (17, 64, 40, 64, 128)]
        batched = execute_sampling_batch(dbs, model="parallel", backend="synced")
        for db, result in zip(dbs, batched):
            reference = ParallelSampler(db, backend="synced").run()
            assert_bit_identical(result, reference, backend="synced")

    def test_final_state_layout_is_synced(self):
        rng = as_generator(103)
        [result] = execute_sampling_batch(
            [random_database(rng, universe=32)], model="parallel", backend="synced"
        )
        assert tuple(result.final_state.layout.names) == ("i", "s", "w")

    def test_strict_mode_run_stays_exact(self):
        rng = as_generator(105)
        dbs = [random_database(rng) for _ in range(3)]
        with strict_mode():
            results = execute_sampling_batch(dbs, model="parallel", backend="synced")
        assert all(r.exact for r in results)

    def test_sequential_model_rejects_synced(self):
        with pytest.raises(ValidationError, match="unknown stacked backend"):
            execute_sampling_batch(
                [random_database(as_generator(0))],
                model="sequential",
                backend="synced",
            )


class TestAutoResolution:
    def test_auto_picks_subspace_below_threshold(self):
        assert auto_stacked_backend("sequential", 64) == "subspace"
        assert auto_stacked_backend("sequential", CONFIG.classes_universe_threshold) == (
            "classes"
        )
        assert auto_stacked_backend("parallel", 64) == "synced"
        assert auto_stacked_backend("parallel", CONFIG.classes_universe_threshold) == (
            "classes"
        )

    def test_auto_respects_dense_cap_override(self):
        assert auto_stacked_backend("sequential", 64, max_dense_dimension=64) == (
            "classes"
        )
        assert auto_stacked_backend("sequential", 32, max_dense_dimension=64) == (
            "subspace"
        )

    def test_auto_batch_splits_by_backend(self):
        rng = as_generator(11)
        small = random_database(rng, universe=32)
        counts = np.zeros((2, CONFIG.classes_universe_threshold), dtype=np.int64)
        counts[0, :8] = 2
        counts[1, :8] = 2
        large = DistributedDatabase.from_count_matrix(counts, nu=8)
        results = execute_sampling_batch(
            [small, large, small],
            model="sequential",
            backend="auto",
            include_probabilities=False,
        )
        assert [r.backend for r in results] == ["subspace", "classes", "subspace"]
        assert all(r.exact for r in results)

    def test_registry_names(self):
        assert "subspace" in stacked_backend_names("sequential")
        assert stacked_backend_names("parallel") == ("classes", "ragged", "synced")
        with pytest.raises(ValidationError, match="unknown stacked backend"):
            execute_sampling_batch(
                [random_database(as_generator(0))],
                model="sequential",
                backend="oracles",
            )

    def test_parallel_model_rejects_subspace(self):
        with pytest.raises(ValidationError, match="unknown stacked backend"):
            execute_sampling_batch(
                [random_database(as_generator(0))],
                model="parallel",
                backend="subspace",
            )


class TestMemoryGuard:
    def test_oversized_dense_stack_raises_simulation_limit(self):
        counts = np.zeros((1, 64), dtype=np.int64)
        counts[0, :4] = 2
        db = DistributedDatabase.from_count_matrix(counts, nu=4)
        before = CONFIG.max_dense_dimension
        CONFIG.max_dense_dimension = 100  # 2N = 128 > 100
        try:
            with pytest.raises(SimulationLimitError):
                execute_sampling_batch([db], model="sequential", backend="subspace")
            # auto falls back to classes instead of raising.
            [result] = execute_sampling_batch([db], model="sequential", backend="auto")
            assert result.backend == "classes"
        finally:
            CONFIG.max_dense_dimension = before


class TestStackedSubspaceVector:
    def test_uniform_is_normalized_per_instance(self):
        state = StackedSubspaceVector.uniform([6, 4, 9])
        np.testing.assert_allclose(state.norms(), np.ones(3), atol=1e-12)
        assert state.width == 9 and state.batch_size == 3

    def test_stack_roundtrips_per_instance_states(self):
        from repro.qsim import StateVector
        from repro.qsim.register import RegisterLayout

        rng = as_generator(3)
        singles = []
        for n in (5, 8, 3):
            amps = rng.normal(size=(n, 2)) + 1j * rng.normal(size=(n, 2))
            amps /= np.linalg.norm(amps)
            singles.append(
                StateVector.from_array(RegisterLayout.of(i=n, w=2), amps)
            )
        stacked = StackedSubspaceVector.stack(singles)
        for b, single in enumerate(singles):
            assert (stacked.extract(b).as_array() == single.as_array()).all()
            assert (
                stacked.output_probabilities(b)
                == single.marginal_probabilities("i")
            ).all()

    def test_padding_rows_stay_inert(self):
        state = StackedSubspaceVector.uniform([4, 2])
        cos = np.ones((2, 4))
        sin = np.zeros((2, 4))
        state.apply_element_flag_rotation(cos, sin)
        state.apply_phase_slice("w", 0, np.exp(0.3j))
        state.apply_pi_projector_phase(np.exp(0.7j))
        assert (state.amplitudes()[1, 2:] == 0).all()

    def test_bad_shapes_rejected(self):
        state = StackedSubspaceVector.uniform([4, 4])
        with pytest.raises(ValidationError):
            state.apply_element_flag_rotation(np.ones((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValidationError):
            state.apply_phase_slice("i", 0, 1.0)
        with pytest.raises(ValidationError):
            state.apply_phase_slice("w", 2, 1.0)
        with pytest.raises(ValidationError):
            StackedSubspaceVector.uniform([])
