"""Shard-local execution + cross-process result marshalling.

``execute_group_local`` must be observationally identical to
``execute_class_batch`` for a pre-packed shape group, and a
pack → (shared memory) → unpack round trip must rebuild results
indistinguishable from the in-process originals — same plan object,
same ledger totals, same schedule fingerprint, same final state.
"""

import numpy as np
import pytest

from repro.batch import ClassInstance, execute_class_batch
from repro.batch.engine import (
    cached_plan,
    execute_group_local,
    pack_group_results,
    unpack_group_results,
)
from repro.errors import ValidationError
from repro.database import DistributedDatabase
from repro.serve.shm import ArenaClient, ShmArena, arrays_nbytes, read_arrays, write_arrays
from repro.utils.rng import as_generator


def random_database(rng):
    """A small random distributed database (mirrors test_batch_engine)."""
    n_machines = int(rng.integers(2, 5))
    universe = int(rng.integers(16, 193))
    nu = int(rng.integers(2, 9))
    total = int(rng.integers(1, max(2, universe // 4)))
    counts = np.zeros((n_machines, universe), dtype=np.int64)
    for _ in range(total):
        j = int(rng.integers(n_machines))
        i = int(rng.integers(universe))
        if counts[:, i].sum() < nu:
            counts[j, i] += 1
    if counts.sum() == 0:
        counts[0, 0] = 1
    return DistributedDatabase.from_count_matrix(counts, nu=nu)


def shape_group(rng, size, model="sequential"):
    """Instances sharing one schedule shape (the packer's invariant)."""
    instances, shape = [], None
    while len(instances) < size:
        inst = ClassInstance.from_db(random_database(rng))
        plan = cached_plan(inst.overlap())
        key = (plan.grover_reps, plan.needs_final)
        if shape is None:
            shape = key
        if key == shape:
            instances.append(inst)
    return instances


def assert_results_match(rebuilt, original):
    assert len(rebuilt) == len(original)
    for ours, ref in zip(rebuilt, original):
        assert ours.model == ref.model
        assert ours.backend == ref.backend
        assert ours.plan is ref.plan  # the memoized plan, by float identity
        assert ours.fidelity == ref.fidelity
        assert ours.schedule.fingerprint() == ref.schedule.fingerprint()
        assert ours.ledger.sequential_queries == ref.ledger.sequential_queries
        assert ours.ledger.parallel_rounds == ref.ledger.parallel_rounds
        assert ours.ledger.per_machine() == ref.ledger.per_machine()
        assert ours.public_parameters == ref.public_parameters
        if ref.output_probabilities is None:
            assert ours.output_probabilities is None
        else:
            np.testing.assert_array_equal(
                ours.output_probabilities, ref.output_probabilities
            )


class TestExecuteGroupLocal:
    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_matches_execute_class_batch(self, model):
        rng = as_generator(7)
        instances = shape_group(rng, 5, model)
        direct = execute_class_batch(
            instances, model=model, include_probabilities=True, backend="classes"
        )
        local = execute_group_local(
            instances, model=model, include_probabilities=True, backend="classes"
        )
        assert_results_match(local, direct)
        for ours, ref in zip(local, direct):
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )

    def test_subspace_group_matches(self):
        rng = as_generator(11)
        instances = shape_group(rng, 4)
        direct = execute_class_batch(
            instances, model="sequential", backend="subspace",
            include_probabilities=True,
        )
        local = execute_group_local(
            instances, model="sequential", backend="subspace",
            include_probabilities=True,
        )
        assert_results_match(local, direct)

    def test_mixed_shapes_rejected(self):
        rng = as_generator(13)
        instances = [ClassInstance.from_db(random_database(rng)) for _ in range(12)]
        shapes = {
            (p.grover_reps, p.needs_final)
            for p in (cached_plan(i.overlap()) for i in instances)
        }
        assert len(shapes) > 1  # the seed spans several schedule shapes
        with pytest.raises(ValidationError, match="schedule-shape"):
            execute_group_local(instances, model="sequential", backend="classes")

    def test_mixed_shapes_error_names_request_id(self):
        # Satellite (b): with request ids the error blames the request,
        # not an opaque batch index.
        rng = as_generator(13)
        instances = [ClassInstance.from_db(random_database(rng)) for _ in range(12)]
        shapes = [
            (p.grover_reps, p.needs_final)
            for p in (cached_plan(i.overlap()) for i in instances)
        ]
        offender = next(b for b, s in enumerate(shapes) if s != shapes[0])
        ids = [f"req-{b:03d}" for b in range(len(instances))]
        with pytest.raises(ValidationError, match=f"request 'req-{offender:03d}'"):
            execute_group_local(
                instances, model="sequential", backend="classes", request_ids=ids
            )

    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_ragged_group_accepts_mixed_shapes(self, model):
        # The same seed the rejection test uses: on the ragged backend the
        # mixed-shape group runs, and every row is bit-identical to that
        # instance's own single-instance stacked-classes execution.
        rng = as_generator(13)
        instances = [ClassInstance.from_db(random_database(rng)) for _ in range(8)]
        shapes = {
            (p.grover_reps, p.needs_final)
            for p in (cached_plan(i.overlap()) for i in instances)
        }
        assert len(shapes) > 1
        results = execute_group_local(
            instances, model=model, include_probabilities=True, backend="ragged"
        )
        for inst, ours in zip(instances, results):
            [ref] = execute_group_local(
                [inst], model=model, include_probabilities=True, backend="classes"
            )
            assert ours.backend == "ragged"
            assert ours.fidelity == ref.fidelity
            np.testing.assert_array_equal(
                ours.output_probabilities, ref.output_probabilities
            )
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )
            assert ours.ledger.summary() == ref.ledger.summary()
            assert ours.schedule.fingerprint() == ref.schedule.fingerprint()

    def test_auto_backend_rejected(self):
        rng = as_generator(3)
        instances = shape_group(rng, 2)
        with pytest.raises(ValidationError):
            execute_group_local(instances, backend="auto")

    def test_empty_group(self):
        assert execute_group_local([], model="sequential") == []


class TestPackUnpack:
    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    @pytest.mark.parametrize("include_probabilities", [False, True])
    def test_classes_round_trip(self, model, include_probabilities):
        rng = as_generator(23)
        instances = shape_group(rng, 4, model)
        original = execute_group_local(
            instances,
            model=model,
            include_probabilities=include_probabilities,
            backend="classes",
        )
        meta, arrays = pack_group_results(original)
        assert all(not isinstance(v, np.ndarray) for e in meta for v in e.values())
        rebuilt = unpack_group_results(meta, arrays, model, False)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )
            assert ours.final_state.norm() == pytest.approx(
                ref.final_state.norm(), abs=1e-12
            )

    def test_dense_round_trip(self):
        rng = as_generator(29)
        instances = shape_group(rng, 3)
        original = execute_group_local(
            instances, model="sequential", include_probabilities=True,
            backend="subspace",
        )
        meta, arrays = pack_group_results(original)
        rebuilt = unpack_group_results(meta, arrays, "sequential", False)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            np.testing.assert_array_equal(
                ours.final_state.as_array(), ref.final_state.as_array()
            )
            assert tuple(ours.final_state.layout.names) == ("i", "w")

    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_ragged_round_trip(self, model):
        # CSR wire format: one shared offsets/sizes/values plane instead
        # of per-instance class arrays.
        rng = as_generator(37)
        instances = [ClassInstance.from_db(random_database(rng)) for _ in range(5)]
        original = execute_group_local(
            instances, model=model, include_probabilities=True, backend="ragged"
        )
        meta, arrays = pack_group_results(original, ragged=True)
        assert {"ro", "rcs", "rv"} <= set(arrays)
        assert not any(k.startswith(("cs", "amps")) for k in arrays)
        assert arrays["ro"].dtype == np.int64 and arrays["ro"].size == 6
        assert arrays["ro"][-1] == arrays["rv"].shape[0] == arrays["rcs"].shape[0]
        rebuilt = unpack_group_results(meta, arrays, model, False)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )

    def test_synced_round_trip_preserves_layout(self):
        # The parallel dense state carries an (i, s, w) layout; the wire
        # format must rebuild it, not fall back to the (i, w) default.
        rng = as_generator(41)
        instances = shape_group(rng, 3, "parallel")
        original = execute_group_local(
            instances, model="parallel", include_probabilities=True,
            backend="synced",
        )
        meta, arrays = pack_group_results(original)
        rebuilt = unpack_group_results(meta, arrays, "parallel", False)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            assert tuple(ours.final_state.layout.names) == tuple(
                ref.final_state.layout.names
            )
            np.testing.assert_array_equal(
                ours.final_state.as_array(), ref.final_state.as_array()
            )

    def test_ragged_round_trip_through_shared_memory(self):
        # The CSR planes (including the int64 offsets) over the real shm
        # wire, mixed schedule shapes included.
        rng = as_generator(43)
        instances = [ClassInstance.from_db(random_database(rng)) for _ in range(6)]
        original = execute_group_local(
            instances, model="sequential", include_probabilities=True,
            backend="ragged",
        )
        meta, arrays = pack_group_results(original, ragged=True)
        client = ArenaClient()
        with ShmArena("ragged-roundtrip", 1 << 20) as arena:
            block = arena.alloc(arrays_nbytes(arrays))
            layout = write_arrays(arena.payload(block), arrays)
            try:
                views = read_arrays(client.view(block), layout)
                rebuilt = unpack_group_results(meta, views, "sequential", False)
            finally:
                client.detach_all()
            arena.free(block)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )

    def test_skip_zero_capacity_restriction_survives(self):
        # A database with an empty machine: the reconstructed ledger and
        # schedule must shed the same machine the worker-side run shed.
        counts = np.zeros((3, 32), dtype=np.int64)
        counts[0, :6] = 2
        counts[2, 6:10] = 1
        db = DistributedDatabase.from_count_matrix(counts, nu=4)
        inst = ClassInstance.from_db(db)
        original = execute_group_local(
            [inst], model="sequential", skip_zero_capacity=True, backend="classes"
        )
        meta, arrays = pack_group_results(original)
        rebuilt = unpack_group_results(meta, arrays, "sequential", True)
        assert_results_match(rebuilt, original)
        assert rebuilt[0].ledger.per_machine()[1] == 0

    def test_round_trip_through_shared_memory(self):
        # The full wire path: pack → write into a shm block → attach as
        # a peer → zero-copy views → unpack → release. The rebuilt
        # results must not alias the (recycled) block.
        rng = as_generator(31)
        instances = shape_group(rng, 3)
        original = execute_group_local(
            instances, model="sequential", include_probabilities=True,
            backend="classes",
        )
        meta, arrays = pack_group_results(original)
        client = ArenaClient()
        with ShmArena("pack-roundtrip", 1 << 20) as arena:
            block = arena.alloc(arrays_nbytes(arrays))
            layout = write_arrays(arena.payload(block), arrays)
            try:
                views = read_arrays(client.view(block), layout)
                rebuilt = unpack_group_results(meta, views, "sequential", False)
            finally:
                client.detach_all()
            arena.free(block)
        assert_results_match(rebuilt, original)
        for ours, ref in zip(rebuilt, original):
            np.testing.assert_array_equal(
                ours.final_state.class_amplitudes(),
                ref.final_state.class_amplitudes(),
            )
