"""Batched-vs-sequential equivalence: the stacked engine must be invisible.

The satellite contract: over a randomized ``(N, M, ν, n, B)`` grid, a
batched run and ``B`` independent ``classes``-backend runs produce
identical output probabilities, fidelities and query-ledger totals.
"""

import numpy as np
import pytest

from repro.batch import execute_sampling_batch
from repro.batch.engine import cached_plan
from repro.config import strict_mode
from repro.core import ParallelSampler, SequentialSampler
from repro.database import DistributedDatabase
from repro.errors import ValidationError
from repro.utils.rng import as_generator


def random_database(rng: np.random.Generator) -> DistributedDatabase:
    """A random valid instance: N ∈ [16, 192], n ∈ [1, 4], ν ∈ [2, 9]."""
    universe = int(rng.integers(16, 193))
    n_machines = int(rng.integers(1, 5))
    nu_data = int(rng.integers(1, 7))
    support = int(rng.integers(1, max(2, universe // 2)))
    joint = np.zeros(universe, dtype=np.int64)
    keys = rng.choice(universe, size=support, replace=False)
    joint[keys] = rng.integers(1, nu_data + 1, size=support)
    # Split the joint counts across machines arbitrarily.
    counts = np.zeros((n_machines, universe), dtype=np.int64)
    for i in np.flatnonzero(joint):
        split = rng.multinomial(joint[i], np.full(n_machines, 1.0 / n_machines))
        counts[:, i] = split
    nu = int(joint.max()) + int(rng.integers(0, 3))
    return DistributedDatabase.from_count_matrix(counts, nu=nu)


def reference_run(db: DistributedDatabase, model: str):
    sampler = (
        SequentialSampler(db, backend="classes")
        if model == "sequential"
        else ParallelSampler(db, backend="classes")
    )
    return sampler.run()


@pytest.mark.parametrize("model", ["sequential", "parallel"])
@pytest.mark.parametrize("batch_size,seed", [(3, 1), (7, 2), (17, 3)])
def test_randomized_grid_equivalence(model, batch_size, seed):
    rng = as_generator(1000 * seed)
    dbs = [random_database(rng) for _ in range(batch_size)]
    batched = execute_sampling_batch(dbs, model=model)
    assert len(batched) == batch_size
    for db, result in zip(dbs, batched):
        reference = reference_run(db, model)
        np.testing.assert_allclose(
            result.output_probabilities, reference.output_probabilities, atol=1e-12
        )
        assert result.fidelity == pytest.approx(reference.fidelity, abs=1e-12)
        assert result.exact and reference.exact
        assert result.ledger.sequential_queries == reference.ledger.sequential_queries
        assert result.ledger.parallel_rounds == reference.ledger.parallel_rounds
        assert result.ledger.per_machine() == reference.ledger.per_machine()
        assert result.schedule.fingerprint() == reference.schedule.fingerprint()
        assert result.plan == reference.plan
        np.testing.assert_allclose(
            result.final_state.class_amplitudes(),
            reference.final_state.class_amplitudes(),
            atol=1e-12,
        )


class TestGrouping:
    def test_mixed_schedule_shapes_preserve_input_order(self):
        # Overlaps far apart → different grover_reps → multiple groups.
        rng = as_generator(42)
        dbs = []
        for _ in range(4):
            dbs.append(random_database(rng))
        plans = {cached_plan(db.initial_overlap()).grover_reps for db in dbs}
        # The seed is chosen so the batch genuinely spans several groups.
        assert len(plans) > 1
        batched = execute_sampling_batch(dbs, model="sequential")
        for db, result in zip(dbs, batched):
            assert result.public_parameters["N"] == db.universe
            assert result.public_parameters["M"] == db.total_count

    def test_plan_cache_shares_frozen_plans(self):
        rng = as_generator(0)
        db = random_database(rng)
        copies = [db, db, db]
        batched = execute_sampling_batch(copies, model="sequential")
        assert batched[0].plan is batched[1].plan is batched[2].plan


class TestEdges:
    def test_empty_batch(self):
        assert execute_sampling_batch([], model="sequential") == []

    def test_single_instance_batch(self, small_db):
        [result] = execute_sampling_batch([small_db], model="sequential")
        reference = reference_run(small_db, "sequential")
        assert result.fidelity == pytest.approx(reference.fidelity, abs=1e-12)
        assert result.summary()["per_machine_queries"] == (
            reference.summary()["per_machine_queries"]
        )

    def test_unknown_model_rejected(self, small_db):
        with pytest.raises(ValidationError):
            execute_sampling_batch([small_db], model="tensor")

    def test_include_probabilities_false_skips_gather(self, small_db):
        [result] = execute_sampling_batch(
            [small_db], model="sequential", include_probabilities=False
        )
        assert result.output_probabilities is None
        assert result.exact

    def test_strict_mode_run_stays_exact(self, small_db, sparse_db):
        with strict_mode():
            results = execute_sampling_batch([small_db, sparse_db], model="parallel")
        assert all(r.exact for r in results)

    def test_million_element_instances_stack(self):
        # The classes substrate's O(ν) state carries over: stacked runs
        # never allocate anything proportional to N except the class maps.
        universe = 10**6
        counts = np.zeros((2, universe), dtype=np.int64)
        counts[0, :125] = 4
        counts[1, :125] = 4
        db = DistributedDatabase.from_count_matrix(counts, nu=8)
        results = execute_sampling_batch(
            [db, db], model="sequential", include_probabilities=False
        )
        assert all(r.exact for r in results)
        assert results[0].final_state.class_amplitudes().shape == (9, 2)


class TestClassInstance:
    """The serving-facing entry: batches from raw class-state snapshots."""

    def test_from_db_reproduces_batch_path(self, small_db, sparse_db):
        from repro.batch import ClassInstance, execute_class_batch

        via_dbs = execute_sampling_batch([small_db, sparse_db], model="sequential")
        via_instances = execute_class_batch(
            [ClassInstance.from_db(small_db), ClassInstance.from_db(sparse_db)],
            model="sequential",
        )
        for a, b in zip(via_dbs, via_instances):
            assert a.fidelity == b.fidelity
            assert a.ledger.summary() == b.ledger.summary()
            np.testing.assert_array_equal(a.output_probabilities, b.output_probabilities)

    def test_from_class_state_snapshot_is_pinned(self, small_db):
        from repro.batch import ClassInstance
        from repro.database.dynamic import random_update_stream

        stream = random_update_stream(small_db, 10, rng=0)
        snapshot = ClassInstance.from_class_state(
            stream.class_state(), small_db.n_machines, capacities=small_db.capacities
        )
        m_before = small_db.total_count
        joints_before = snapshot.joints.copy()
        stream.apply_all()
        # The snapshot must not follow the live view.
        assert snapshot.total == m_before
        np.testing.assert_array_equal(snapshot.joints, joints_before)
        fresh = ClassInstance.from_db(small_db)
        assert fresh.total == small_db.total_count

    def test_from_class_state_matches_from_db(self, small_db):
        from repro.batch import ClassInstance, execute_class_batch
        from repro.database.dynamic import random_update_stream

        stream = random_update_stream(small_db, 8, rng=1)
        stream.class_state()
        stream.apply_all()
        live = ClassInstance.from_class_state(
            stream.class_state(), small_db.n_machines, capacities=small_db.capacities
        )
        scanned = ClassInstance.from_db(small_db)
        np.testing.assert_array_equal(live.joints, scanned.joints)
        assert live.total == scanned.total
        assert live.nu == scanned.nu
        assert live.overlap() == scanned.overlap()
        [a], [b] = execute_class_batch([live]), execute_class_batch([scanned])
        assert a.fidelity == b.fidelity
        assert a.public_parameters == b.public_parameters

    def test_empty_batch(self):
        from repro.batch import execute_class_batch

        assert execute_class_batch([]) == []
