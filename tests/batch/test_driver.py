"""The throughput driver: determinism, ordering, packing, process fan-out."""

import numpy as np
import pytest

from repro.analysis import InstanceSpec
from repro.batch import DEFAULT_BATCH_SIZE, default_row, pack_batches, run_batched
from repro.database import WorkloadSpec
from repro.errors import ValidationError


def specs(count=6, universe=64, total=24):
    return [
        InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=universe, total=total),
            n_machines=2 + (k % 2),
            strategy="round_robin",
            tag=f"inst{k}",
        )
        for k in range(count)
    ]


class TestRows:
    def test_one_row_per_spec_in_spec_order(self):
        result = run_batched(specs(), rng=0, batch_size=4)
        assert len(result) == 6
        for k, row in enumerate(result.rows):
            assert f"inst{k}" in row["label"]

    def test_rows_carry_sweep_and_audit_columns(self):
        result = run_batched(specs(count=2), rng=0)
        row = result.rows[0]
        for column in ("label", "n", "N", "M", "nu", "backend", "fidelity",
                       "exact", "sequential_queries", "parallel_rounds", "batched"):
            assert column in row
        assert row["backend"] == "classes"
        assert row["batched"] is True
        assert row["exact"] is True

    def test_parallel_model_rows(self):
        result = run_batched(specs(count=3), model="parallel", rng=0)
        assert all(row["parallel_rounds"] > 0 for row in result.rows)
        assert all(row["exact"] for row in result.rows)

    def test_custom_row_fn(self):
        result = run_batched(
            specs(count=2), rng=0, row_fn=lambda spec, db, res: {"f": res.fidelity}
        )
        assert set(result.rows[0]) == {"f"}


class TestDeterminism:
    def test_same_rng_same_rows(self):
        a = run_batched(specs(), rng=7, batch_size=2)
        b = run_batched(specs(), rng=7, batch_size=2)
        assert a.rows == b.rows

    def test_batch_size_does_not_change_rows(self):
        # Packing width can shift float reductions by an ulp (NumPy's
        # pairwise summation blocks differently per row length), so
        # fidelity is compared to 1e-12 and everything else exactly.
        a = run_batched(specs(), rng=7, batch_size=2)
        b = run_batched(specs(), rng=7, batch_size=DEFAULT_BATCH_SIZE)
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a["fidelity"] == pytest.approx(row_b["fidelity"], abs=1e-12)
            scalar_a = {k: v for k, v in row_a.items() if k != "fidelity"}
            scalar_b = {k: v for k, v in row_b.items() if k != "fidelity"}
            assert scalar_a == scalar_b

    def test_jobs_do_not_change_rows(self):
        a = run_batched(specs(), rng=7, batch_size=2)
        b = run_batched(specs(), rng=7, batch_size=2, jobs=2)
        assert a.rows == b.rows


class TestPacking:
    def test_pack_batches_chunks_in_order(self):
        items = [(None, k) for k in range(7)]
        batches = pack_batches(items, 3)
        assert [len(b) for b in batches] == [3, 3, 1]
        assert [seed for batch in batches for _, seed in batch] == list(range(7))

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValidationError):
            pack_batches([], 0)

    def test_empty_specs(self):
        assert len(run_batched([], rng=0)) == 0


class TestDefaultRow:
    def test_values_are_plain_python_scalars(self):
        result = run_batched(specs(count=1), rng=0)
        for value in result.rows[0].values():
            assert not isinstance(value, np.generic)

    def test_default_row_is_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(default_row)) is default_row


class TestLazySpecStreams:
    """specs may be a generator: consumed chunk-wise, never materialized."""

    def test_generator_rows_match_list_rows(self):
        eager = run_batched(specs(), rng=7, batch_size=2)
        lazy = run_batched(iter(specs()), rng=7, batch_size=2)
        assert eager.rows == lazy.rows

    def test_stream_consumed_incrementally(self):
        """The first batch executes before later specs are even drawn."""
        pulled = []
        consumed_at_execution = []

        def spec_stream():
            for k, spec in enumerate(specs()):
                pulled.append(k)
                yield spec

        def recording_row(spec, db, result):
            consumed_at_execution.append(len(pulled))
            return {"label": spec.label()}

        run_batched(spec_stream(), rng=0, batch_size=2, row_fn=recording_row)
        # 6 specs, batch_size 2: when the first batch's rows are built,
        # only that batch's specs (2) have been drawn from the stream.
        assert consumed_at_execution[0] == 2
        assert consumed_at_execution[-1] == 6

    def test_generator_with_jobs_matches_in_process(self):
        lazy_fanout = run_batched(iter(specs()), rng=7, batch_size=2, jobs=2)
        in_process = run_batched(specs(), rng=7, batch_size=2)
        assert lazy_fanout.rows == in_process.rows

    def test_iter_seeded_batches_chunks_and_seed_order(self):
        from repro.batch import iter_seeded_batches

        items = specs()
        batches = list(iter_seeded_batches(items, 5, batch_size=4))
        assert [len(b) for b in batches] == [4, 2]
        assert [spec for batch in batches for spec, _ in batch] == items
        # seeds are the spec-order spawn_seed sequence for rng=5
        from repro.utils.rng import as_generator, spawn_seed

        gen = as_generator(5)
        expected = [spawn_seed(gen) for _ in items]
        assert [seed for batch in batches for _, seed in batch] == expected
