"""Ragged CSR-packed class substrate: fill ≈ 1 with bit-identical rows.

The acceptance bar mirrors the stacked-dense suite, but against the
*stacked classes* reference: every row of a mixed-ν, mixed-N, even
mixed-schedule ragged batch must equal that instance's own
single-instance ``classes``-backend execution **bit for bit** —
fidelity, output distribution, class amplitudes, ledger and schedule.
A hypothesis grid drives the kernel-level invariants (``from_parts``
round-trip, count conservation under ``transfer_element``) on shapes
the fixed seeds rarely hit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import (
    RaggedClassVector,
    execute_sampling_batch,
    padded_fill_ratio,
)
from repro.batch.ragged import RaggedClassBackend
from repro.config import CONFIG, strict_mode
from repro.database import DistributedDatabase
from repro.errors import ValidationError
from repro.utils.rng import as_generator


def random_database(rng: np.random.Generator) -> DistributedDatabase:
    """Small random distributed database (mirrors test_batch_engine)."""
    n_machines = int(rng.integers(2, 5))
    universe = int(rng.integers(16, 193))
    nu = int(rng.integers(2, 9))
    total = int(rng.integers(1, max(2, universe // 4)))
    counts = np.zeros((n_machines, universe), dtype=np.int64)
    for _ in range(total):
        j = int(rng.integers(n_machines))
        i = int(rng.integers(universe))
        if counts[:, i].sum() < nu:
            counts[j, i] += 1
    if counts.sum() == 0:
        counts[0, 0] = 1
    return DistributedDatabase.from_count_matrix(counts, nu=nu)


def mixed_databases() -> list[DistributedDatabase]:
    """Six instances spanning several ν, N, n and schedule shapes."""
    from repro.analysis.sweep import InstanceSpec, WorkloadSpec

    def db(total, n, universe, seed):
        spec = InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=universe, total=total),
            n_machines=n,
            tag="t",
        )
        return spec.build(as_generator(seed))

    return [
        db(24, 2, 64, 0), db(6, 3, 32, 1), db(48, 2, 64, 2),
        db(30, 5, 16, 3), db(12, 2, 64, 4), db(24, 4, 32, 5),
    ]


def assert_row_bit_identical(result, reference):
    """Every float the row carries matches the reference with ==."""
    assert result.fidelity == reference.fidelity
    assert (result.output_probabilities == reference.output_probabilities).all()
    assert (
        result.final_state.class_amplitudes()
        == reference.final_state.class_amplitudes()
    ).all()
    assert result.ledger.summary() == reference.ledger.summary()
    assert result.ledger.per_machine() == reference.ledger.per_machine()
    assert result.schedule.fingerprint() == reference.schedule.fingerprint()
    assert result.plan == reference.plan


class TestBitIdentity:
    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_grid_matches_per_instance_classes(self, model, seed):
        rng = as_generator(3000 * seed)
        dbs = [random_database(rng) for _ in range(9)]
        batched = execute_sampling_batch(
            dbs, model=model, backend="ragged", include_probabilities=True
        )
        for db, result in zip(dbs, batched):
            [reference] = execute_sampling_batch(
                [db], model=model, backend="classes", include_probabilities=True
            )
            assert result.backend == "ragged"
            assert_row_bit_identical(result, reference)

    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_mixed_schedule_batch_matches_per_instance(self, model):
        """Mixed (reps, needs_final) shapes run as ONE masked-loop group."""
        dbs = mixed_databases()
        batched = execute_sampling_batch(
            dbs, model=model, backend="ragged", include_probabilities=True
        )
        for db, result in zip(dbs, batched):
            [reference] = execute_sampling_batch(
                [db], model=model, backend="classes", include_probabilities=True
            )
            assert_row_bit_identical(result, reference)

    def test_strict_mode_run_stays_exact(self):
        dbs = mixed_databases()[:3]
        with strict_mode():
            results = execute_sampling_batch(dbs, model="sequential", backend="ragged")
        assert all(r.exact for r in results)

    def test_auto_reroutes_heterogeneous_batches(self):
        """With the threshold armed, an auto mixed-ν batch goes ragged;
        with it at 0 (the default) auto keeps the per-shape classes path.
        Rows must agree bit for bit either way."""
        counts = np.zeros((2, CONFIG.classes_universe_threshold), dtype=np.int64)
        dbs = []
        for b, nu in enumerate((2, 8, 3, 6)):
            wide = counts.copy()
            wide[0, : 2 + b] = 1
            wide[1, 2 + b] = nu
            dbs.append(DistributedDatabase.from_count_matrix(wide, nu=nu))
        assert padded_fill_ratio([db.nu + 1 for db in dbs]) < 0.95
        before = CONFIG.ragged_fill_threshold
        try:
            CONFIG.ragged_fill_threshold = 0.0
            padded = execute_sampling_batch(
                dbs, model="sequential", backend="auto", include_probabilities=True
            )
            assert {r.backend for r in padded} == {"classes"}
            CONFIG.ragged_fill_threshold = 0.95
            ragged = execute_sampling_batch(
                dbs, model="sequential", backend="auto", include_probabilities=True
            )
            assert {r.backend for r in ragged} == {"ragged"}
        finally:
            CONFIG.ragged_fill_threshold = before
        for ours, ref in zip(ragged, padded):
            assert ours.fidelity == ref.fidelity
            np.testing.assert_array_equal(
                ours.output_probabilities, ref.output_probabilities
            )


#: One instance: (universe size, class count), kept tiny so the grid
#: explores shapes, not arithmetic.
instance_shapes = st.tuples(
    st.integers(min_value=1, max_value=9),   # N
    st.integers(min_value=1, max_value=6),   # ν + 1  (1 ⇒ a ν=0 instance)
)


def build_segment(rng: np.random.Generator, n: int, n_classes: int):
    element_classes = rng.integers(0, n_classes, size=n).astype(np.int64)
    amps = rng.normal(size=(n_classes, 2)) + 1j * rng.normal(size=(n_classes, 2))
    return element_classes, amps


@st.composite
def batches(draw):
    shapes = draw(st.lists(instance_shapes, min_size=1, max_size=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return shapes, seed


class TestPropertyGrid:
    @given(batches())
    @settings(max_examples=60, deadline=None)
    def test_from_parts_round_trip(self, batch):
        """extract → from_parts of the CSR pieces is the identity, at any
        mix of widths and universe sizes."""
        shapes, seed = batch
        rng = as_generator(seed)
        maps, planes = [], []
        for n, c in shapes:
            ec, amps = build_segment(rng, n, c)
            maps.append(ec)
            planes.append(amps)
        state = RaggedClassVector(
            maps, [c for _, c in shapes], values=np.concatenate(planes, axis=0)
        )
        rebuilt = RaggedClassVector.from_parts(
            maps, state.offsets, state.class_sizes, state.values()
        )
        assert (rebuilt.values() == state.values()).all()
        assert (rebuilt.offsets == state.offsets).all()
        assert (rebuilt.n_classes == state.n_classes).all()
        for b, (ec, amps) in enumerate(zip(maps, planes)):
            cell = rebuilt.extract(b)
            assert (cell.class_amplitudes() == amps).all()
            assert (cell.element_classes == ec).all()

    @given(batches())
    @settings(max_examples=60, deadline=None)
    def test_transfer_element_conserves_counts(self, batch):
        """Moving elements between classes never changes any instance's
        total multiplicity, and never touches sibling segments."""
        shapes, seed = batch
        rng = as_generator(seed)
        maps = []
        for n, c in shapes:
            ec, _ = build_segment(rng, n, c)
            maps.append(ec)
        state = RaggedClassVector.uniform(maps, [c for _, c in shapes])
        totals = [
            state.class_sizes[state.offsets[b]:state.offsets[b + 1]].sum()
            for b in range(state.batch_size)
        ]
        for _ in range(8):
            b = int(rng.integers(state.batch_size))
            n, c = shapes[b]
            state.transfer_element(b, int(rng.integers(n)), int(rng.integers(c)))
        for b in range(state.batch_size):
            seg = state.class_sizes[state.offsets[b]:state.offsets[b + 1]]
            assert seg.sum() == totals[b]
            assert (seg >= 0).all()
            # the class map and the multiplicity plane stay consistent
            rebuilt = np.bincount(
                state._element_classes[b], minlength=shapes[b][1]
            ).astype(np.float64)
            assert (seg == rebuilt).all()

    @given(batches())
    @settings(max_examples=40, deadline=None)
    def test_extract_matches_per_instance_operations(self, batch):
        """The π-projector phase — the only cross-cell reduction — agrees
        bit for bit with each instance's own B = 1 StackedClassVector run
        (the family's reference arithmetic, which the end-to-end engine
        gate compares against)."""
        from repro.batch import StackedClassVector
        from repro.qsim import ClassVector

        shapes, seed = batch
        rng = as_generator(seed)
        maps, singles = [], []
        for n, c in shapes:
            ec, amps = build_segment(rng, n, c)
            maps.append(ec)
            singles.append(ClassVector(ec, c, amps=amps))
        state = RaggedClassVector(
            maps,
            [c for _, c in shapes],
            values=np.concatenate([s.class_amplitudes() for s in singles], axis=0),
        )
        phases = np.exp(1j * rng.normal(size=len(shapes)))
        state.apply_pi_projector_phase(phases)
        for b, single in enumerate(singles):
            reference = StackedClassVector.stack([single])
            reference.apply_pi_projector_phase(phases[b:b + 1])
            assert (state.extract(b).class_amplitudes()
                    == reference.extract(0).class_amplitudes()).all()

    @given(st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_padded_fill_ratio_bounds(self, widths):
        ratio = padded_fill_ratio(widths)
        assert 0.0 < ratio <= 1.0
        assert ratio == pytest.approx(sum(widths) / (len(widths) * max(widths)))
        if len(set(widths)) == 1:
            assert ratio == 1.0


class TestValidation:
    def test_rejects_out_of_range_classes(self):
        with pytest.raises(ValidationError, match="instance 1"):
            RaggedClassVector(
                [np.zeros(3, dtype=np.int64), np.array([0, 2], dtype=np.int64)],
                [1, 2],
            )

    def test_rejects_empty_batch(self):
        with pytest.raises(ValidationError):
            RaggedClassVector([], [])

    def test_rejects_wrong_values_shape(self):
        with pytest.raises(ValidationError, match="values"):
            RaggedClassVector(
                [np.zeros(3, dtype=np.int64)], [2],
                values=np.zeros((3, 2), dtype=np.complex128),
            )

    def test_rejects_element_register_phase_slice(self):
        state = RaggedClassVector.uniform([np.zeros(3, dtype=np.int64)], [2])
        with pytest.raises(ValidationError, match="'i'"):
            state.apply_phase_slice("i", 0, 1.0)

    def test_registered_for_both_models(self):
        assert RaggedClassBackend.name == "ragged"
        assert RaggedClassBackend.supports_mixed_schedules
        assert set(RaggedClassBackend.models) == {"sequential", "parallel"}

    def test_fill_ratio_reported(self):
        state = RaggedClassVector.uniform(
            [np.zeros(4, dtype=np.int64), np.zeros(2, dtype=np.int64)], [4, 2]
        )
        # the property reports the fill a PADDED stack of these widths
        # would get — the signal ragged_fill_threshold compares against.
        assert state.fill_ratio == padded_fill_ratio([4, 2]) == 0.75
