"""StackedClassVector: every batched kernel must equal per-instance ClassVector."""

import numpy as np
import pytest

from repro.batch import StackedClassVector
from repro.config import strict_mode
from repro.core import u_rotation_blocks
from repro.errors import NotUnitaryError, ValidationError
from repro.qsim import ClassVector


@pytest.fixture
def maps():
    """Three heterogeneous instances: mixed N and mixed class counts."""
    return [
        np.array([0, 0, 1, 2, 2, 2], dtype=np.int64),        # N=6, 3 classes
        np.array([1, 1, 0, 3], dtype=np.int64),               # N=4, 4 classes
        np.array([0, 2, 2, 1, 0, 1, 2, 0], dtype=np.int64),   # N=8, 3 classes
    ]


@pytest.fixture
def n_classes():
    return [3, 4, 3]


@pytest.fixture
def stacked(maps, n_classes):
    return StackedClassVector.uniform(maps, n_classes)


@pytest.fixture
def singles(maps, n_classes):
    return [ClassVector.uniform(ec, c) for ec, c in zip(maps, n_classes)]


def padded_blocks(mats_per_instance, width):
    out = np.tile(np.eye(2, dtype=np.complex128), (len(mats_per_instance), width, 1, 1))
    for b, mats in enumerate(mats_per_instance):
        out[b, : mats.shape[0]] = mats
    return out


def assert_matches_singles(stacked, singles):
    for b, single in enumerate(singles):
        extracted = stacked.extract(b)
        np.testing.assert_allclose(
            extracted.class_amplitudes(), single.class_amplitudes(), atol=1e-12
        )
        np.testing.assert_array_equal(extracted.class_sizes, single.class_sizes)
        np.testing.assert_allclose(
            stacked.output_probabilities(b),
            single.marginal_probabilities("i"),
            atol=1e-12,
        )


class TestConstruction:
    def test_uniform_is_normalized_per_instance(self, stacked):
        np.testing.assert_allclose(stacked.norms(), np.ones(3), atol=1e-12)

    def test_width_is_max_class_count(self, stacked):
        assert stacked.width == 4
        assert stacked.batch_size == 3

    def test_padded_classes_have_zero_multiplicity(self, stacked):
        assert stacked.class_sizes[0, 3] == 0.0
        assert stacked.class_sizes[2, 3] == 0.0

    def test_uniform_matches_per_instance(self, stacked, singles):
        assert_matches_singles(stacked, singles)

    def test_stack_roundtrips_existing_states(self, singles):
        restacked = StackedClassVector.stack(singles)
        assert_matches_singles(restacked, singles)

    def test_out_of_range_class_rejected(self):
        with pytest.raises(ValidationError):
            StackedClassVector.uniform([np.array([0, 5])], [4])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValidationError):
            StackedClassVector.uniform([], [])

    def test_mismatched_lengths_rejected(self, maps):
        with pytest.raises(ValidationError):
            StackedClassVector.uniform(maps, [3, 4])

    def test_memory_independent_of_universe(self):
        big = StackedClassVector.uniform(
            [np.zeros(10**5, dtype=np.int64), np.zeros(10**4, dtype=np.int64)], [4, 4]
        )
        assert big.amplitudes().size == 2 * 4 * 2  # B × (ν+1) × 2 cells only


class TestKernelsAgainstSingles:
    def test_class_flag_unitary(self, stacked, singles, n_classes):
        mats = [u_rotation_blocks(c - 1) for c in n_classes]
        stacked.apply_class_flag_unitary(padded_blocks(mats, stacked.width))
        for single, m in zip(singles, mats):
            single.apply_class_flag_unitary(m)
        assert_matches_singles(stacked, singles)

    def test_phase_slice_scalar(self, stacked, singles):
        phase = np.exp(0.7j)
        stacked.apply_phase_slice("w", 0, phase)
        for single in singles:
            single.apply_phase_slice("w", 0, phase)
        assert_matches_singles(stacked, singles)

    def test_phase_slice_per_instance(self, stacked, singles):
        phases = np.exp(1j * np.array([0.3, -1.2, 2.5]))
        stacked.apply_phase_slice("w", 1, phases)
        for single, p in zip(singles, phases):
            single.apply_phase_slice("w", 1, complex(p))
        assert_matches_singles(stacked, singles)

    def test_pi_projector_phase(self, stacked, singles, n_classes):
        # A non-uniform state first, so the projector has real work to do.
        mats = [u_rotation_blocks(c - 1) for c in n_classes]
        stacked.apply_class_flag_unitary(padded_blocks(mats, stacked.width))
        for single, m in zip(singles, mats):
            single.apply_class_flag_unitary(m)
        phases = np.exp(1j * np.array([np.pi, 0.4, -0.9]))
        stacked.apply_pi_projector_phase(phases)
        for single, p in zip(singles, phases):
            single.apply_pi_projector_phase(complex(p))
        assert_matches_singles(stacked, singles)

    def test_global_phase(self, stacked, singles):
        stacked.apply_global_phase(-1.0)
        for single in singles:
            single.apply_global_phase(-1.0)
        assert_matches_singles(stacked, singles)

    def test_fidelities_match_single_form(self, stacked, singles, n_classes):
        from repro.core import fidelity_with_target_classes
        from repro.database import DistributedDatabase

        mats = [u_rotation_blocks(c - 1) for c in n_classes]
        stacked.apply_class_flag_unitary(padded_blocks(mats, stacked.width))
        totals = [int(s.class_sizes @ np.arange(s.n_classes)) for s in singles]
        fids = stacked.fidelities_with_targets(totals)
        for b, single in enumerate(singles):
            single.apply_class_flag_unitary(mats[b])
            counts = single.element_classes  # class == joint count here
            db = DistributedDatabase.from_count_matrix(
                counts[None, :], nu=single.n_classes - 1
            )
            assert fids[b] == pytest.approx(
                fidelity_with_target_classes(db, single), abs=1e-12
            )


class TestValidation:
    def test_bad_mats_shape_rejected(self, stacked):
        with pytest.raises(ValidationError):
            stacked.apply_class_flag_unitary(np.zeros((3, 2, 2, 2)))

    def test_non_unit_phase_rejected(self, stacked):
        with pytest.raises(NotUnitaryError):
            stacked.apply_global_phase(0.5)

    def test_non_unit_phase_array_rejected(self, stacked):
        with pytest.raises(NotUnitaryError):
            stacked.apply_phase_slice("w", 0, np.array([1.0, 1.0, 0.5]))

    def test_wrong_phase_array_shape_rejected(self, stacked):
        with pytest.raises(ValidationError):
            stacked.apply_phase_slice("w", 0, np.exp(1j * np.ones(5)))

    def test_element_register_phase_rejected(self, stacked):
        with pytest.raises(ValidationError):
            stacked.apply_phase_slice("i", 0, 1.0)

    def test_bad_flag_value_rejected(self, stacked):
        with pytest.raises(ValidationError):
            stacked.apply_phase_slice("w", 2, 1.0)

    def test_fidelity_needs_one_total_per_instance(self, stacked):
        with pytest.raises(ValidationError):
            stacked.fidelities_with_targets([5, 5])

    def test_strict_checks_catch_norm_drift(self, stacked):
        bad = np.tile(0.5 * np.eye(2, dtype=np.complex128), (3, stacked.width, 1, 1))
        with strict_mode():
            with pytest.raises(NotUnitaryError):
                stacked.apply_class_flag_unitary(bad)
