"""Fault schedules: ordering, consistency, determinism, snapshots."""

import pytest

from repro.database import disjoint_support, replicated, sparse_support_dataset
from repro.errors import ValidationError
from repro.scenarios import (
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    degraded_snapshot,
    expected_mask_fidelity,
)


def schedule(*events):
    return FaultSchedule(n_machines=3, events=events)


class TestFaultEvent:
    def test_kinds(self):
        assert set(EVENT_KINDS) == {"kill", "revive"}
        with pytest.raises(ValidationError, match="kind"):
            FaultEvent(at_request=0, machine=0, kind="maim")

    def test_negative_fields_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent(at_request=-1, machine=0)


class TestFaultSchedule:
    def test_events_sorted_by_request(self):
        s = schedule(FaultEvent(5, 1, "revive"), FaultEvent(2, 1, "kill"))
        assert [e.at_request for e in s.events] == [2, 5]

    def test_killing_a_dead_machine_rejected(self):
        with pytest.raises(ValidationError, match="already dead"):
            schedule(FaultEvent(1, 0, "kill"), FaultEvent(2, 0, "kill"))

    def test_reviving_a_live_machine_rejected(self):
        with pytest.raises(ValidationError, match="alive"):
            schedule(FaultEvent(1, 0, "revive"))

    def test_no_prefix_may_kill_everyone(self):
        with pytest.raises(ValidationError, match="no machine alive"):
            FaultSchedule(
                n_machines=2,
                events=(FaultEvent(1, 0, "kill"), FaultEvent(2, 1, "kill")),
            )

    def test_machine_index_bounds(self):
        with pytest.raises(ValidationError):
            schedule(FaultEvent(1, 7, "kill"))

    def test_mask_at_replays_the_timeline(self):
        s = schedule(
            FaultEvent(2, 1, "kill"),
            FaultEvent(4, 2, "kill"),
            FaultEvent(6, 1, "revive"),
        )
        assert s.masks(8) == [
            (), (), (1,), (1,), (1, 2), (1, 2), (2,), (2,),
        ]

    def test_change_points_mark_replan_positions(self):
        s = schedule(FaultEvent(2, 1, "kill"), FaultEvent(6, 1, "revive"))
        assert s.change_points(8) == (2, 6)
        assert s.change_points(2) == ()

    def test_random_is_deterministic_in_the_seed(self):
        a = FaultSchedule.random(4, 10, n_kills=2, rng=13)
        b = FaultSchedule.random(4, 10, n_kills=2, rng=13)
        assert a == b

    def test_random_leaves_a_survivor_everywhere(self):
        for seed in range(8):
            s = FaultSchedule.random(3, 12, n_kills=2, rng=seed)
            for mask in s.masks(12):
                assert len(mask) < 3

    def test_random_needs_a_survivor(self):
        with pytest.raises(ValidationError, match="survivor"):
            FaultSchedule.random(2, 8, n_kills=2)


class TestDegradedSnapshot:
    def test_empty_mask_is_identity(self):
        db = replicated(sparse_support_dataset(16, 4, rng=0), 3)
        assert degraded_snapshot(db, ()) is db

    def test_masks_never_accumulate(self):
        """Each position masks the ORIGINAL database — a revive restores
        the shard exactly."""
        db = disjoint_support(sparse_support_dataset(16, 6, rng=1), 3, rng=1)
        once = degraded_snapshot(db, (1,))
        again = degraded_snapshot(db, ())
        assert once.machine(1).size == 0
        assert once.machine(1).capacity == 0  # announced, not silent
        assert again.machine(1).size == db.machine(1).size

    def test_replicated_snapshot_keeps_fidelity_one(self):
        db = replicated(sparse_support_dataset(16, 4, multiplicity=2, rng=2), 3)
        assert expected_mask_fidelity(db, (0, 2)) == pytest.approx(1.0)
