"""The scenario registry: validation rules, built-ins, materialization."""

import pytest

from repro.database import WorkloadSpec
from repro.errors import RequestError, ValidationError
from repro.scenarios import (
    ChurnSpec,
    FaultEvent,
    FaultSchedule,
    Scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
)

BUILTINS = (
    "uniform-baseline",
    "zipf-skew",
    "sparse-grover",
    "adversarial-hot-shard",
    "replicated-loss",
    "disjoint-loss",
    "chaos-kill-revive",
    "churn-heavy",
    "reshard-growth",
)


class TestValidation:
    def test_needs_a_name(self):
        with pytest.raises(ValidationError):
            Scenario(name="", description="x")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            Scenario(name="s", description="x",
                     workload=WorkloadSpec.of("pareto", universe=8, total=4))

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValidationError, match="partition"):
            Scenario(name="s", description="x", partition="mystery")

    def test_unknown_capacity_rejected(self):
        with pytest.raises(ValidationError, match="capacity"):
            Scenario(name="s", description="x", capacity="greedy")

    def test_mask_and_schedule_are_exclusive(self):
        schedule = FaultSchedule(n_machines=3)
        with pytest.raises(ValidationError, match="not both"):
            Scenario(name="s", description="x", capacity="skip_empty",
                     fault_mask=(1,), fault_schedule=schedule)

    def test_churn_excludes_fault_axes(self):
        with pytest.raises(ValidationError, match="churn"):
            Scenario(name="s", description="x", capacity="skip_empty",
                     churn=ChurnSpec(), fault_mask=(1,))
        with pytest.raises(ValidationError, match="churn"):
            Scenario(name="s", description="x", churn=ChurnSpec(),
                     topology_steps=(2, 3))

    def test_faulted_scenario_requires_skip_empty(self):
        with pytest.raises(ValidationError, match="skip_empty"):
            Scenario(name="s", description="x", fault_mask=(1,))

    def test_mask_must_leave_a_survivor(self):
        with pytest.raises(ValidationError, match="survive"):
            Scenario(name="s", description="x", n_machines=2,
                     capacity="skip_empty", fault_mask=(0, 1))

    def test_mask_checked_against_smallest_topology(self):
        # Machine 2 exists at n_machines=3 but not in the 2-machine steps.
        with pytest.raises(ValidationError):
            Scenario(name="s", description="x", n_machines=3,
                     capacity="skip_empty", fault_mask=(2,),
                     topology_steps=(2, 3))

    def test_schedule_must_match_smallest_topology(self):
        with pytest.raises(ValidationError, match="smallest topology"):
            Scenario(name="s", description="x", capacity="skip_empty",
                     fault_schedule=FaultSchedule(n_machines=2),
                     n_machines=3)

    def test_mask_is_canonicalized(self):
        s = Scenario(name="s", description="x", n_machines=4,
                     capacity="skip_empty", fault_mask=(2, 1, 2))
        assert s.fault_mask == (1, 2)

    def test_fidelity_floor_bounds(self):
        with pytest.raises(ValidationError, match="fidelity_floor"):
            Scenario(name="s", description="x", fidelity_floor=1.5)

    def test_churn_spec_bounds(self):
        with pytest.raises(ValidationError):
            ChurnSpec(updates_per_request=0)
        with pytest.raises(ValidationError):
            ChurnSpec(insert_probability=1.5)


class TestAxes:
    def test_machines_at_cycles_topology_steps(self):
        s = Scenario(name="s", description="x", n_machines=2,
                     topology_steps=(2, 2, 3, 3))
        assert [s.machines_at(i) for i in range(6)] == [2, 2, 3, 3, 2, 2]

    def test_machines_at_constant_without_steps(self):
        s = Scenario(name="s", description="x", n_machines=3)
        assert s.machines_at(0) == s.machines_at(99) == 3

    def test_mask_at_static(self):
        s = Scenario(name="s", description="x", capacity="skip_empty",
                     fault_mask=(1,))
        assert s.mask_at(0) == s.mask_at(5) == (1,)

    def test_mask_at_follows_schedule(self):
        schedule = FaultSchedule(
            n_machines=3,
            events=(FaultEvent(2, 1, "kill"), FaultEvent(4, 1, "revive")),
        )
        s = Scenario(name="s", description="x", capacity="skip_empty",
                     fault_schedule=schedule)
        assert [s.mask_at(i) for i in range(5)] == [(), (), (1,), (1,), ()]

    def test_spec_carries_the_shape(self):
        s = resolve_scenario("reshard-growth")
        assert s.spec(0).n_machines == 2
        assert s.spec(2).n_machines == 3
        assert s.spec(0).tag == "reshard-growth"


class TestRequests:
    def test_request_carries_mask_and_capacity(self):
        s = resolve_scenario("disjoint-loss")
        req = s.request(0, seed=3)
        assert req.fault_mask == (0,)
        assert req.capacity == "skip_empty"
        assert req.spec is not None and req.seed == 3

    def test_healthy_request_has_no_mask(self):
        req = resolve_scenario("uniform-baseline").request(0)
        assert req.fault_mask is None

    def test_requests_pin_seeds_per_position(self):
        s = resolve_scenario("zipf-skew")
        reqs = s.requests(3, seeds=[7, 8, 9])
        assert [r.seed for r in reqs] == [7, 8, 9]

    def test_requests_seed_count_must_match(self):
        with pytest.raises(ValidationError, match="seeds"):
            resolve_scenario("zipf-skew").requests(3, seeds=[1])

    def test_churn_scenario_rejects_spec_requests(self):
        with pytest.raises(ValidationError, match="live snapshots"):
            resolve_scenario("churn-heavy").request(0)

    def test_with_replaces_fields(self):
        s = resolve_scenario("disjoint-loss").with_(name="mine", fault_mask=(1,))
        assert s.name == "mine" and s.fault_mask == (1,)
        # The original registry entry is untouched.
        assert resolve_scenario("disjoint-loss").fault_mask == (0,)


class TestRegistry:
    def test_builtins_present(self):
        names = scenario_names()
        for name in BUILTINS:
            assert name in names
        assert names == tuple(sorted(names))

    def test_resolve_by_name_and_passthrough(self):
        s = resolve_scenario("uniform-baseline")
        assert resolve_scenario(s) is s

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            resolve_scenario("not-a-scenario")

    def test_register_rejects_duplicates(self):
        s = resolve_scenario("uniform-baseline")
        with pytest.raises(ValidationError, match="already registered"):
            register_scenario(s.with_(description="dup"))

    def test_register_overwrite_roundtrip(self):
        original = resolve_scenario("uniform-baseline")
        try:
            register_scenario(
                original.with_(description="patched"), overwrite=True
            )
            assert resolve_scenario("uniform-baseline").description == "patched"
        finally:
            register_scenario(original, overwrite=True)


class TestFrontDoorIntegration:
    def test_scenario_kwarg_fills_the_request(self):
        from repro.api import SamplingRequest

        req = SamplingRequest(scenario="disjoint-loss", seed=5)
        assert req.scenario == "disjoint-loss"
        assert req.fault_mask == (0,)
        assert req.capacity == "skip_empty"
        assert req.spec is not None

    def test_scenario_kwarg_rejects_explicit_source(self):
        from repro.api import SamplingRequest

        s = resolve_scenario("uniform-baseline")
        with pytest.raises(RequestError):
            SamplingRequest(scenario="uniform-baseline", spec=s.spec(0))

    def test_churn_scenario_rejected_at_the_front_door(self):
        from repro.api import SamplingRequest

        with pytest.raises(RequestError, match="churn|live"):
            SamplingRequest(scenario="churn-heavy")
