"""The scenario matrix: cells, gates, equivalence, churn replay."""

import pytest

from repro.errors import ValidationError
from repro.scenarios import (
    COMPARED_COLUMNS,
    ScenarioMatrix,
    resolve_scenario,
    scenario_names,
)


class TestCells:
    def test_cell_grid_shape_and_order(self):
        matrix = ScenarioMatrix(
            scenarios=["uniform-baseline", "zipf-skew"],
            models=("sequential",),
            backends=("auto", "statevector"),
            shards=(None, 2),
        )
        cells = matrix.cells()
        assert len(cells) == 2 * 1 * 2 * 2
        # Scenario-major: the first four cells all belong to the first name.
        assert all(c.scenario.name == "uniform-baseline" for c in cells[:4])

    def test_default_sweep_covers_the_registry(self):
        matrix = ScenarioMatrix()
        assert tuple(c.scenario.name for c in matrix.cells()) == scenario_names()

    def test_cell_key_normalizes_unsharded_to_zero(self):
        matrix = ScenarioMatrix(scenarios=["uniform-baseline"], shards=(None,))
        assert matrix.cells()[0].key()["shards"] == 0

    def test_needs_at_least_one_scenario(self):
        with pytest.raises(ValidationError):
            ScenarioMatrix(scenarios=[])


class TestGates:
    def test_small_strict_matrix_passes(self):
        rows = ScenarioMatrix(
            scenarios=["uniform-baseline", "disjoint-loss"],
            requests_per_cell=3,
            strict=True,
        ).run(rng=1)
        assert [r["gate"] for r in rows] == ["passed", "passed"]
        assert all(r["all_exact"] for r in rows)
        assert all(r["requests"] == 3 for r in rows)

    def test_floor_failure_recorded_when_not_strict(self):
        # Disjoint loss cannot reach fidelity 1 — the floor must trip.
        doomed = resolve_scenario("disjoint-loss").with_(
            name="doomed", fidelity_floor=1.0
        )
        rows = ScenarioMatrix(
            scenarios=[doomed], requests_per_cell=2, strict=False
        ).run(rng=0)
        assert rows[0]["gate"].startswith("failed:")
        assert "floor" in rows[0]["gate"]

    def test_floor_failure_raises_when_strict(self):
        doomed = resolve_scenario("disjoint-loss").with_(
            name="doomed", fidelity_floor=1.0
        )
        with pytest.raises(ValidationError, match="doomed"):
            ScenarioMatrix(
                scenarios=[doomed], requests_per_cell=2, strict=True
            ).run(rng=0)

    def test_verify_off_skips_the_gates(self):
        rows = ScenarioMatrix(
            scenarios=["uniform-baseline"], requests_per_cell=2, verify=False
        ).run(rng=0)
        assert rows[0]["gate"] == "skipped"

    def test_compared_columns_cover_the_physics(self):
        for column in ("fidelity", "exact", "sequential_queries", "nu"):
            assert column in COMPARED_COLUMNS


class TestChurnCells:
    def test_churn_cell_passes_strict(self):
        rows = ScenarioMatrix(
            scenarios=["churn-heavy"], requests_per_cell=3, strict=True
        ).run(rng=4)
        assert rows[0]["gate"] == "passed"
        assert rows[0]["all_exact"]
        assert rows[0]["expected_fidelity_min"] == 1.0

    def test_churn_rows_are_deterministic_in_the_sweep_rng(self):
        run = lambda: ScenarioMatrix(  # noqa: E731
            scenarios=["churn-heavy"], requests_per_cell=3, strict=True
        ).run(rng=11)
        a, b = run(), run()
        drop = ("wall_time_s", "instances_per_sec")
        strip = lambda row: {k: v for k, v in row.items() if k not in drop}  # noqa: E731
        assert [strip(r) for r in a] == [strip(r) for r in b]


class TestFaultIdentities:
    def test_replicated_cell_expected_fidelity_is_one(self):
        rows = ScenarioMatrix(
            scenarios=["replicated-loss"], requests_per_cell=2, strict=True
        ).run(rng=3)
        assert rows[0]["expected_fidelity_min"] == pytest.approx(1.0, abs=1e-12)

    def test_disjoint_cell_expected_fidelity_below_one(self):
        rows = ScenarioMatrix(
            scenarios=["disjoint-loss"], requests_per_cell=2, strict=True
        ).run(rng=3)
        assert rows[0]["expected_fidelity_min"] < 1.0 - 1e-6
        assert rows[0]["expected_fidelity_min"] >= rows[0]["fidelity_floor"]
