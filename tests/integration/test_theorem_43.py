"""Theorem 4.3 end-to-end: exact sampling, Θ(n√(νN/M)) sequential cost."""

import numpy as np
import pytest

from repro.analysis import compare_envelope, fit_power_law, slope_matches
from repro.core import sample_sequential, theoretical_sequential_queries
from repro.database import DistributedDatabase, Multiset, round_robin, uniform_dataset


class TestExactnessAcrossRegimes:
    @pytest.mark.parametrize(
        "n_univ,total,nu,n",
        [
            (8, 4, 2, 1),
            (16, 8, 2, 2),
            (32, 6, 3, 3),
            (64, 10, 5, 2),
            (128, 4, 1, 4),
        ],
    )
    def test_zero_error_everywhere(self, n_univ, total, nu, n):
        dataset = uniform_dataset(n_univ, total, rng=n_univ + total)
        # Cap multiplicities at ν by construction: use sparse support.
        counts = np.zeros(n_univ, dtype=np.int64)
        counts[:total] = 1
        db = round_robin(Multiset.from_counts(counts), n, nu=nu)
        result = sample_sequential(db, backend="subspace")
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)


class TestScalingInN:
    def test_sqrt_scaling_in_universe(self):
        """Queries must scale as √N at fixed M, ν, n."""
        sizes = [64, 256, 1024, 4096]
        queries = []
        for n_univ in sizes:
            db = DistributedDatabase.from_shards(
                [Multiset(n_univ, {0: 1, 1: 1}), Multiset(n_univ, {2: 1, 3: 1})],
                nu=1,
            )
            queries.append(sample_sequential(db, backend="subspace").sequential_queries)
        fit = fit_power_law(sizes, queries)
        assert slope_matches(fit, 0.5, tolerance=0.1)

    def test_linear_scaling_in_machines(self):
        """At fixed (N, M, ν), sequential cost is exactly linear in n."""
        queries = []
        machine_counts = [1, 2, 4, 8]
        for n in machine_counts:
            shards = [Multiset(64, {0: 1, 1: 1})] + [
                Multiset.empty(64) for _ in range(n - 1)
            ]
            db = DistributedDatabase.from_shards(shards, nu=1)
            queries.append(sample_sequential(db, backend="subspace").sequential_queries)
        ratios = np.array(queries) / np.array(machine_counts)
        assert np.all(ratios == ratios[0])

    def test_envelope_constant_bounded(self):
        """measured / (nπ√(νN/M)) stays in a tight band across the sweep."""
        measured, predicted = [], []
        for n_univ in (128, 512, 2048):
            for n in (1, 3):
                shards = [Multiset(n_univ, {0: 1, 1: 1})] + [
                    Multiset.empty(n_univ) for _ in range(n - 1)
                ]
                db = DistributedDatabase.from_shards(shards, nu=1)
                result = sample_sequential(db, backend="subspace")
                measured.append(result.sequential_queries)
                predicted.append(
                    theoretical_sequential_queries(n, n_univ, db.total_count, db.nu)
                )
        comparison = compare_envelope(measured, predicted)
        assert comparison.within_constant(1.5)


class TestCapacityDependence:
    def test_queries_scale_sqrt_nu(self):
        """At fixed (N, M, n), cost grows like √ν (looser capacity = more
        amplification work)."""
        queries = []
        nus = [1, 4, 16]
        for nu in nus:
            db = DistributedDatabase.from_shards(
                [Multiset(256, {0: 1, 1: 1})], nu=nu
            )
            queries.append(sample_sequential(db, backend="subspace").sequential_queries)
        fit = fit_power_law(nus, queries)
        assert slope_matches(fit, 0.5, tolerance=0.12)

    def test_queries_scale_inverse_sqrt_m(self):
        """At fixed (N, ν, n), cost shrinks like 1/√M."""
        queries = []
        totals = [2, 8, 32]
        for total in totals:
            counts = np.zeros(256, dtype=np.int64)
            counts[:total] = 1
            db = DistributedDatabase.from_shards([Multiset.from_counts(counts)], nu=1)
            queries.append(sample_sequential(db, backend="subspace").sequential_queries)
        fit = fit_power_law(totals, queries)
        assert slope_matches(fit, -0.5, tolerance=0.12)
