"""Section 5 end-to-end: the lower-bound proof's inequalities as one story.

For a heterogeneous-capacity database we check, in order, each link of the
proof chain of Theorem 5.1 and that the algorithm lands within a constant
of the resulting bound.
"""

import numpy as np
import pytest

from repro.core import sample_parallel, sample_sequential
from repro.database import DistributedDatabase, Multiset
from repro.lowerbound import (
    HardInputFamily,
    check_hard_input,
    make_hard_input,
    parallel_bound_expression,
    per_machine_query_floor,
    potential_curve,
    sequential_bound_expression,
)


class TestProofChain:
    @pytest.fixture
    def family(self):
        base = make_hard_input(
            universe=12, n_machines=2, k=0, support_size=3, multiplicity=2
        )
        return HardInputFamily(base, k=0)

    def test_step1_condition_holds(self, family):
        assert check_hard_input(family.base, family.k, 1.0, 1.0).satisfied

    def test_step2_family_size(self, family):
        from math import comb

        assert family.size() == comb(12, 3)

    def test_step3_growth_and_requirement(self, family):
        curve = potential_curve(family, sample_size=6, rng=0)
        assert curve.within_bound()          # Lemma 5.8
        assert curve.meets_requirement()     # Lemma 5.7 (ε = 0 ⇒ C = 1/2)

    def test_step4_implied_floor_vs_actual(self, family):
        base = family.base
        floor = per_machine_query_floor(base, family.k)
        result = sample_sequential(base)
        assert result.ledger.machine_queries(family.k) >= floor

    def test_step5_total_bound_vs_algorithm(self, family):
        base = family.base
        result = sample_sequential(base)
        bound = sequential_bound_expression(base)
        # The theorem says queries = Ω(bound); our algorithm should sit a
        # constant above it — and that constant should be modest.
        assert result.sequential_queries >= 0.2 * bound
        assert result.sequential_queries <= 50 * bound


class TestHeterogeneousCapacities:
    @pytest.fixture
    def hetero_db(self):
        shards = [
            Multiset(32, {0: 4, 1: 4}),
            Multiset(32, {8: 1}),
            Multiset(32, {16: 1, 17: 1}),
        ]
        return DistributedDatabase.from_shards(shards, capacities=[4, 1, 1], nu=8)

    def test_sequential_bound_sums_heterogeneous_terms(self, hetero_db):
        total = hetero_db.total_count
        expected = (
            np.sqrt(4 * 32 / total)
            + np.sqrt(1 * 32 / total)
            + np.sqrt(1 * 32 / total)
        )
        assert sequential_bound_expression(hetero_db) == pytest.approx(expected)

    def test_parallel_bound_is_heaviest_machine(self, hetero_db):
        assert parallel_bound_expression(hetero_db) == pytest.approx(
            np.sqrt(4 * 32 / hetero_db.total_count)
        )

    def test_both_models_exact_on_heterogeneous_data(self, hetero_db):
        assert sample_sequential(hetero_db, backend="subspace").exact
        assert sample_parallel(hetero_db).exact

    def test_sequential_exceeds_its_bound_and_parallel_its_own(self, hetero_db):
        seq = sample_sequential(hetero_db, backend="subspace")
        par = sample_parallel(hetero_db)
        assert seq.sequential_queries >= sequential_bound_expression(hetero_db) * 0.2
        assert par.parallel_rounds >= parallel_bound_expression(hetero_db) * 0.2


class TestPotentialAcrossFamilies:
    @pytest.mark.parametrize("support_size", [2, 3, 4])
    def test_growth_bound_various_supports(self, support_size):
        base = make_hard_input(
            universe=10, n_machines=1, k=0, support_size=support_size, multiplicity=1
        )
        family = HardInputFamily(base, k=0)
        curve = potential_curve(family, sample_size=5, rng=support_size)
        assert curve.within_bound()

    def test_potential_grows_with_queries(self):
        base = make_hard_input(
            universe=16, n_machines=1, k=0, support_size=2, multiplicity=1
        )
        family = HardInputFamily(base, k=0)
        curve = potential_curve(family, sample_size=6, rng=9)
        # Potential is (weakly) increasing in the prefix and substantial at the end.
        assert curve.measured[-1] > curve.measured[1]
        assert curve.measured[-1] >= 0.5 * curve.final_requirement
