"""Lemma-level integration checks (4.1, 4.2, 4.4, Eq. 7) on one instance."""

import numpy as np
import pytest

from repro.core import (
    DirectDistributingOperator,
    OracleDistributingOperator,
    ParallelDistributingOperator,
    initial_decomposition,
)
from repro.database import DistributedDatabase, Multiset, QueryLedger
from repro.qsim import (
    RegisterLayout,
    StateVector,
    is_unitary,
    operator_matrix,
    uniform_state,
)


@pytest.fixture
def db():
    return DistributedDatabase.from_shards(
        [Multiset(4, {0: 1, 1: 2}), Multiset(4, {1: 1, 2: 1})], nu=3
    )


class TestLemma41:
    """D extends to a unitary on the whole Hilbert space."""

    def test_direct_form_unitary(self, db):
        layout = RegisterLayout.of(i=4, w=2)
        op = DirectDistributingOperator(db)
        assert is_unitary(operator_matrix(layout, lambda s: op.apply(s)))

    def test_inner_product_preservation_on_domain(self, db):
        # ⟨i,0|D†D|j,0⟩ = δ_ij — the exact computation in the lemma's proof.
        layout = RegisterLayout.of(i=4, w=2)
        op = DirectDistributingOperator(db)
        images = []
        for i in range(4):
            state = StateVector.basis(layout, {"i": i, "w": 0})
            op.apply(state)
            images.append(state.flat())
        gram = np.array([[np.vdot(a, b) for b in images] for a in images])
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-12)


class TestLemma42:
    """D = (O₁…O_n)† U (O₁…O_n): 2n queries, input-independent U."""

    def test_oracle_count(self, db):
        ledger = QueryLedger(2)
        op = OracleDistributingOperator(db, ledger=ledger)
        layout = RegisterLayout.of(i=4, s=4, w=2)
        op.apply(StateVector.zero(layout))
        assert ledger.sequential_queries == 4  # 2n = 4

    def test_matrix_identity(self, db):
        """The three-step circuit equals D ⊗ I_s restricted to s = 0."""
        layout = RegisterLayout.of(i=4, s=4, w=2)
        oracle_op = OracleDistributingOperator(db)
        full = operator_matrix(layout, lambda s: oracle_op.apply(s))
        assert is_unitary(full)

        small_layout = RegisterLayout.of(i=4, w=2)
        direct_op = DirectDistributingOperator(db)
        direct = operator_matrix(small_layout, lambda s: direct_op.apply(s))

        # Index map: flat (i, s, w) with s = 0 ↔ flat (i, w).
        s_dim = 4
        idx = [i * (s_dim * 2) + 0 * 2 + w for i in range(4) for w in range(2)]
        block = full[np.ix_(idx, idx)]
        np.testing.assert_allclose(block, direct, atol=1e-12)


class TestLemma44:
    """Parallel D: 4 rounds; the dense choreography is exact."""

    def test_round_count(self, db):
        ledger = QueryLedger(2)
        op = ParallelDistributingOperator(db, ledger=ledger, mode="dense")
        layout = ParallelDistributingOperator.dense_layout(db)
        op.apply(StateVector.zero(layout))
        assert ledger.parallel_rounds == 4

    def test_loads_joint_count_through_ancillas(self, db):
        """After the first half of the circuit (load + U), measuring w
        realizes the D rotation driven by the *joint* c_i."""
        layout = ParallelDistributingOperator.dense_layout(db)
        op = ParallelDistributingOperator(db, mode="dense")
        for i in range(4):
            state = StateVector.basis(
                layout,
                {"i": i, "s": 0, "w": 0, "pi0": 0, "ps0": 0, "pb0": 0,
                 "pi1": 0, "ps1": 0, "pb1": 0},
            )
            op.apply(state)
            c_i = int(db.joint_counts[i])
            expected_w0 = c_i / db.nu
            assert state.probability_of({"w": 0}) == pytest.approx(expected_w0)


class TestEquationSeven:
    def test_d_pi_decomposition(self, db):
        """D|π,0⟩ = √(M/νN)|ψ,0⟩ + √(1−M/νN)|ψ⊥,1⟩ with the exact
        amplitudes, on the honest oracle backend."""
        layout = RegisterLayout.of(i=4, s=4, w=2)
        amps = np.zeros(layout.shape, dtype=np.complex128)
        amps[:, 0, 0] = uniform_state(4)
        state = StateVector.from_array(layout, amps)
        OracleDistributingOperator(db).apply(state)

        decomp = initial_decomposition(db)
        good_part = state.as_array()[:, 0, 0]
        bad_part = state.as_array()[:, 0, 1]
        np.testing.assert_allclose(
            good_part, np.sqrt(decomp.overlap) * decomp.good, atol=1e-12
        )
        np.testing.assert_allclose(
            bad_part, np.sqrt(1 - decomp.overlap) * decomp.bad, atol=1e-12
        )
