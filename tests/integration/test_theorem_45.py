"""Theorem 4.5 end-to-end: parallel rounds Θ(√(νN/M)), n-free."""

import numpy as np
import pytest

from repro.analysis import compare_envelope, fit_power_law, slope_matches
from repro.core import (
    sample_parallel,
    sample_sequential,
    theoretical_parallel_rounds,
)
from repro.database import DistributedDatabase, Multiset


def _db(n_univ, n_machines, keys=(0, 1)):
    shards = [Multiset(n_univ, {k: 1 for k in keys})] + [
        Multiset.empty(n_univ) for _ in range(n_machines - 1)
    ]
    return DistributedDatabase.from_shards(shards, nu=1)


class TestRoundScaling:
    def test_sqrt_scaling_in_universe(self):
        sizes = [64, 256, 1024, 4096]
        rounds = [sample_parallel(_db(s, 2)).parallel_rounds for s in sizes]
        fit = fit_power_law(sizes, rounds)
        assert slope_matches(fit, 0.5, tolerance=0.1)

    def test_rounds_flat_in_machine_count(self):
        rounds = [sample_parallel(_db(256, n)).parallel_rounds for n in (1, 2, 4, 8)]
        assert len(set(rounds)) == 1

    def test_envelope(self):
        measured, predicted = [], []
        for n_univ in (128, 512, 2048):
            db = _db(n_univ, 3)
            measured.append(sample_parallel(db).parallel_rounds)
            predicted.append(
                theoretical_parallel_rounds(n_univ, db.total_count, db.nu)
            )
        assert compare_envelope(measured, predicted).within_constant(1.5)


class TestSequentialParallelRelation:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_round_speedup_is_exactly_half_n(self, n):
        db = _db(256, n)
        seq = sample_sequential(db, backend="subspace")
        par = sample_parallel(db)
        assert seq.sequential_queries / par.parallel_rounds == pytest.approx(n / 2)

    def test_identical_iteration_structure(self):
        """Both models execute the same amplification plan — only the
        query pattern per D differs."""
        db = _db(256, 4)
        seq = sample_sequential(db)
        par = sample_parallel(db)
        assert seq.plan == par.plan

    def test_identical_outputs(self):
        db = _db(128, 3, keys=(0, 5, 9))
        seq = sample_sequential(db, backend="subspace")
        par = sample_parallel(db)
        np.testing.assert_allclose(
            seq.output_probabilities, par.output_probabilities, atol=1e-10
        )
