"""Full-pipeline integration: workloads → partition → sample → verify."""

import numpy as np
import pytest

from repro.analysis import sampling_consistent
from repro.baselines import CentralizedSampler, ClassicalExactCoordinator
from repro.core import sample_parallel, sample_sequential
from repro.database import (
    disjoint_support,
    partition,
    random_update_stream,
    round_robin,
    sparse_support_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.qsim import sample_register


class TestWorkloadsTimesStrategies:
    @pytest.mark.parametrize("strategy", ["round_robin", "random", "disjoint", "skewed"])
    @pytest.mark.parametrize("workload", ["uniform", "zipf"])
    def test_exact_sampling_everywhere(self, strategy, workload):
        maker = uniform_dataset if workload == "uniform" else zipf_dataset
        dataset = maker(24, 30, rng=hash((strategy, workload)) % 2**31)
        db = partition(dataset, 3, strategy=strategy, rng=7)
        result = sample_sequential(db, backend="subspace")
        assert result.fidelity == pytest.approx(1.0, abs=1e-9), (strategy, workload)

    def test_replicated_data_also_exact(self):
        from repro.database import replicated

        dataset = sparse_support_dataset(16, 4, rng=0)
        db = replicated(dataset, 3)
        result = sample_sequential(db, backend="subspace")
        assert result.exact
        # Replication must not change the sampled distribution.
        np.testing.assert_allclose(
            result.output_probabilities, dataset.frequencies(), atol=1e-10
        )


class TestMeasurementAgreesWithData:
    def test_born_samples_match_database(self):
        dataset = zipf_dataset(12, 60, exponent=1.2, rng=5)
        db = round_robin(dataset, 2)
        result = sample_sequential(db, backend="subspace")
        outcomes = sample_register(result.final_state, "i", shots=20000, rng=3)
        assert sampling_consistent(outcomes, db.sampling_distribution())

    def test_quantum_and_classical_sampling_agree(self):
        dataset = uniform_dataset(10, 40, rng=2)
        db = round_robin(dataset, 2)
        quantum = sample_sequential(db, backend="subspace")
        q_outcomes = sample_register(quantum.final_state, "i", shots=15000, rng=1)
        c_outcomes = ClassicalExactCoordinator(db).sample(15000, rng=1)
        q_freq = np.bincount(q_outcomes, minlength=10) / 15000
        c_freq = np.bincount(c_outcomes, minlength=10) / 15000
        np.testing.assert_allclose(q_freq, c_freq, atol=0.03)


class TestDynamicDatabaseResampling:
    def test_sampling_correct_after_every_prefix(self):
        from repro.database import DistributedDatabase, Machine, Multiset

        machines = [
            Machine(Multiset(8, {0: 1, 1: 1}), capacity=3),
            Machine(Multiset(8, {4: 1}), capacity=3),
        ]
        db = DistributedDatabase(machines, nu=6)
        stream = random_update_stream(db, length=6, rng=4)
        for _ in range(3):
            stream.apply_next(2)
            if db.total_count == 0:
                continue
            result = sample_sequential(db, backend="subspace")
            assert result.exact
            np.testing.assert_allclose(
                result.output_probabilities, db.sampling_distribution(), atol=1e-9
            )

    def test_update_cost_is_unit_per_change(self):
        from repro.database import DistributedDatabase, Machine, Multiset

        machines = [Machine(Multiset(8, {0: 1}), capacity=4)]
        db = DistributedDatabase(machines, nu=4)
        stream = random_update_stream(db, length=9, rng=0)
        stream.apply_all()
        assert stream.total_update_cost() == 9


class TestThreeModelComparison:
    def test_cost_ordering(self):
        """centralized ≤ parallel rounds ≤ sequential queries (for n ≥ 2)."""
        dataset = sparse_support_dataset(64, 4, rng=8)
        db = disjoint_support(dataset, 4, rng=9)
        central = CentralizedSampler(db).run()
        seq = sample_sequential(db, backend="subspace")
        par = sample_parallel(db)
        assert central.sequential_queries <= par.parallel_rounds
        assert par.parallel_rounds <= seq.sequential_queries

    def test_all_three_exact(self):
        dataset = sparse_support_dataset(32, 5, rng=1)
        db = round_robin(dataset, 3)
        assert CentralizedSampler(db).run().exact
        assert sample_sequential(db, backend="subspace").exact
        assert sample_parallel(db).exact
