"""Shared fixtures: canonical databases, layouts, deterministic RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.database import (
    DistributedDatabase,
    Machine,
    Multiset,
    round_robin,
    uniform_dataset,
    zipf_dataset,
)
from repro.qsim import RegisterLayout
from repro.utils.rng import as_generator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator — never use global numpy randomness."""
    return as_generator(20250611)


@pytest.fixture
def tiny_db() -> DistributedDatabase:
    """2 machines, N = 4, overlapping keys — small enough for dense checks.

    counts:  machine0 = {0:2, 1:1},  machine1 = {1:1, 3:1}
    joint:   c = (2, 2, 0, 1), M = 5, ν = 4 (headroom above max c_i = 2).
    """
    shards = [Multiset(4, {0: 2, 1: 1}), Multiset(4, {1: 1, 3: 1})]
    return DistributedDatabase.from_shards(shards, nu=4)


@pytest.fixture
def small_db() -> DistributedDatabase:
    """3 machines, N = 8, Zipf-ish data — the workhorse instance."""
    shards = [
        Multiset(8, {0: 3, 1: 1, 2: 1}),
        Multiset(8, {0: 1, 3: 2}),
        Multiset(8, {5: 1, 6: 1}),
    ]
    return DistributedDatabase.from_shards(shards, nu=6)


@pytest.fixture
def sparse_db() -> DistributedDatabase:
    """Low overlap a = M/(νN): forces several Grover iterations."""
    shards = [Multiset(32, {0: 1, 7: 1}), Multiset(32, {20: 2})]
    return DistributedDatabase.from_shards(shards, nu=4)


@pytest.fixture
def single_machine_db() -> DistributedDatabase:
    """The centralized n = 1 case."""
    return DistributedDatabase.from_shards([Multiset(8, {1: 2, 4: 1, 6: 1})], nu=3)


@pytest.fixture
def uniform_db(rng) -> DistributedDatabase:
    """Randomized uniform workload over 2 machines (seeded)."""
    return round_robin(uniform_dataset(16, 24, rng=rng), n_machines=2)


@pytest.fixture
def zipf_db(rng) -> DistributedDatabase:
    """Randomized Zipf workload over 3 machines (seeded)."""
    return round_robin(zipf_dataset(16, 30, exponent=1.3, rng=rng), n_machines=3)


@pytest.fixture
def basic_layout() -> RegisterLayout:
    """The sequential sampler layout on a small instance."""
    return RegisterLayout.of(i=4, s=3, w=2)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration checks")
