"""Quantum mean estimation on the distributed sampler."""

import numpy as np
import pytest

from repro.apps import (
    classical_monte_carlo_shots,
    estimate_mean,
    mean_query_cost,
)
from repro.apps.mean_estimation import true_mean
from repro.core import solve_plan
from repro.database import DistributedDatabase, Multiset, round_robin, zipf_dataset
from repro.errors import ValidationError
from repro.utils.rng import as_generator


@pytest.fixture
def db():
    return round_robin(zipf_dataset(16, 40, exponent=1.1, rng=4), n_machines=2)


@pytest.fixture
def scores(db):
    gen = as_generator(9)
    return gen.uniform(0.0, 1.0, size=db.universe)


class TestTrueMean:
    def test_weighted_average(self, db, scores):
        expected = float(np.dot(db.sampling_distribution(), scores))
        assert true_mean(db, scores) == pytest.approx(expected)

    def test_constant_function(self, db):
        assert true_mean(db, np.full(db.universe, 0.7)) == pytest.approx(0.7)

    def test_score_validation(self, db):
        with pytest.raises(ValidationError):
            true_mean(db, np.full(db.universe, 1.5))
        with pytest.raises(ValidationError):
            true_mean(db, np.ones(3))


class TestEstimateMean:
    def test_converges_with_precision(self, db, scores):
        errors = []
        for p_bits in (4, 7, 10):
            est = estimate_mean(db, scores, precision_bits=p_bits, shots=9, rng=0)
            errors.append(est.error)
        assert errors[2] < errors[0]
        assert errors[2] < 5e-3

    def test_within_error_bound_usually(self, db, scores):
        hits = 0
        for seed in range(10):
            est = estimate_mean(db, scores, precision_bits=8, shots=1, rng=seed)
            if est.error <= est.error_bound + 1e-12:
                hits += 1
        assert hits >= 7

    def test_zero_function(self, db):
        est = estimate_mean(db, np.zeros(db.universe), precision_bits=5, shots=3, rng=0)
        assert est.value == 0.0
        assert est.true_value == 0.0

    def test_indicator_function_recovers_probability(self, db):
        """E[1_{i=k}] = p_k — mean estimation doubles as frequency readout."""
        key = int(np.argmax(db.joint_counts))
        indicator = np.zeros(db.universe)
        indicator[key] = 1.0
        est = estimate_mean(db, indicator, precision_bits=10, shots=9, rng=1)
        assert est.error < 5e-3

    def test_per_shot_recorded(self, db, scores):
        est = estimate_mean(db, scores, precision_bits=6, shots=7, rng=2)
        assert est.per_shot.shape == (7,)
        assert est.value == pytest.approx(float(np.median(est.per_shot)))


class TestQueryCost:
    def test_cost_formula(self, db):
        a_invocations, total = mean_query_cost(db, precision_bits=5, shots=3)
        plan = solve_plan(db.initial_overlap())
        p_dim = 32
        assert a_invocations == 2 * (p_dim - 1) + 1
        assert total == 3 * a_invocations * 2 * db.n_machines * plan.d_applications

    def test_estimate_reports_same_cost(self, db, scores):
        est = estimate_mean(db, scores, precision_bits=5, shots=3, rng=0)
        _, total = mean_query_cost(db, precision_bits=5, shots=3)
        assert est.sequential_queries == total

    def test_quadratic_speedup_scaling(self, db, scores):
        """Quantum cost doubles per extra bit (ε halves): linear in 1/ε;
        classical Monte Carlo quadruples: quadratic in 1/ε."""
        _, q1 = mean_query_cost(db, precision_bits=6, shots=1)
        _, q2 = mean_query_cost(db, precision_bits=7, shots=1)
        assert q2 / q1 == pytest.approx(2.0, rel=0.05)
        c1 = classical_monte_carlo_shots(1e-2)
        c2 = classical_monte_carlo_shots(5e-3)
        assert c2 / c1 == pytest.approx(4.0, rel=0.01)

    def test_classical_shots_validation(self):
        with pytest.raises(ValidationError):
            classical_monte_carlo_shots(0.0)


class TestDistributedInvariance:
    def test_mean_independent_of_sharding(self, scores):
        dataset = zipf_dataset(16, 40, exponent=1.1, rng=4)
        db2 = round_robin(dataset, n_machines=2)
        db4 = round_robin(dataset, n_machines=4)
        est2 = estimate_mean(db2, scores, precision_bits=8, shots=9, rng=3)
        est4 = estimate_mean(db4, scores, precision_bits=8, shots=9, rng=3)
        assert est2.true_value == pytest.approx(est4.true_value)
        assert est2.value == pytest.approx(est4.value)

    def test_queries_scale_with_machines(self, scores):
        dataset = zipf_dataset(16, 40, exponent=1.1, rng=4)
        db2 = round_robin(dataset, n_machines=2)
        db4 = round_robin(dataset, n_machines=4)
        _, q2 = mean_query_cost(db2, precision_bits=6, shots=1)
        _, q4 = mean_query_cost(db4, precision_bits=6, shots=1)
        assert q4 == 2 * q2
