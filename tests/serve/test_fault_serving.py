"""Serving degraded topologies: masks through both tiers, bit-identical."""

import pytest

import repro
from repro.scenarios import resolve_scenario

#: Columns that must agree between a served trace and its per-instance
#: reference on the same seeds and masks.
PHYSICAL = (
    "fidelity", "exact", "n", "N", "M", "nu",
    "grover_reps", "sequential_queries", "parallel_rounds",
)


def physical(rows):
    return [{k: r[k] for k in PHYSICAL if k in r} for r in rows]


def masked_trace(name, count, base_seed):
    scenario = resolve_scenario(name)
    seeds = [base_seed + i for i in range(count)]
    return scenario.requests(count, seeds=seeds)


class TestUnshardedFaultServing:
    @pytest.mark.parametrize("name", ["replicated-loss", "disjoint-loss"])
    def test_served_matches_instance_reference(self, name):
        requests = masked_trace(name, 4, 300)
        served = repro.serve(requests, batch_size=4)
        reference = repro.sample_many(requests, strategy="instance")
        assert physical(served.rows()) == physical(reference.rows())
        assert all(served.column("exact"))

    def test_mid_trace_schedule_changes_the_served_target(self):
        """chaos-kill-revive: M drops while machine 1 is dead (replicated
        shards — one copy's mass gone), and recovers on revival."""
        scenario = resolve_scenario("chaos-kill-revive")
        seed = 88  # one seed: every position rebuilds the same database
        requests = scenario.requests(8, seeds=[seed] * 8)
        served = repro.serve(requests, batch_size=4)
        masses = [int(m) for m in served.column("M")]
        healthy, degraded = masses[0], masses[2]
        assert degraded < healthy
        assert masses == [
            healthy, healthy,
            degraded, degraded, degraded, degraded,
            healthy, healthy,
        ]
        assert all(served.column("exact"))

    def test_mask_changes_never_leak_across_positions(self):
        """Masks derive from the original build: after the revive the
        rows are identical to an all-healthy trace at those positions."""
        scenario = resolve_scenario("chaos-kill-revive")
        seeds = [500 + i for i in range(8)]
        chaos = repro.serve(scenario.requests(8, seeds=seeds), batch_size=4)
        healthy = scenario.with_(
            name="healthy", fault_schedule=None, capacity="skip_empty"
        )
        clean = repro.serve(healthy.requests(8, seeds=seeds), batch_size=4)
        for i in (0, 1, 6, 7):  # before the kill, after the revive
            assert physical([chaos.rows()[i]]) == physical([clean.rows()[i]])


class TestShardedFaultServing:
    def test_sharded_tier_matches_instance_reference(self):
        requests = masked_trace("disjoint-loss", 4, 700)
        served = repro.serve(requests, shards=2, batch_size=4)
        reference = repro.sample_many(requests, strategy="instance")
        assert physical(served.rows()) == physical(reference.rows())

    def test_sharded_schedule_trace_matches_unsharded(self):
        scenario = resolve_scenario("chaos-kill-revive")
        seeds = [900 + i for i in range(8)]
        requests = scenario.requests(8, seeds=seeds)
        sharded = repro.serve(requests, shards=2, batch_size=4)
        unsharded = repro.serve(
            scenario.requests(8, seeds=seeds), batch_size=4
        )
        assert physical(sharded.rows()) == physical(unsharded.rows())
