"""ServiceStats: counter bookkeeping and snapshot fields."""

from repro.serve import ServiceStats
from repro.serve.stats import percentile


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeResult:
    def __init__(self, sequential_queries=10, parallel_rounds=0, exact=True):
        self.sequential_queries = sequential_queries
        self.parallel_rounds = parallel_rounds
        self.exact = exact


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_median_and_tail(self):
        values = sorted(float(v) for v in range(100))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 99.0  # clamped to the last rank


class TestCounters:
    def test_snapshot_follows_lifecycle(self):
        clock = FakeClock()
        stats = ServiceStats(clock=clock)
        for _ in range(4):
            stats.record_submit()
        assert stats.queue_depth == 4

        stats.record_batch(3, target=4)
        clock.now = 2.0
        for latency in (0.5, 1.0, 2.0):
            stats.record_complete(latency, FakeResult(sequential_queries=6))
        snap = stats.snapshot()
        assert snap["submitted"] == 4
        assert snap["completed"] == 3
        assert snap["queue_depth"] == 1
        assert snap["batches_executed"] == 1
        assert snap["batch_fill_ratio"] == 0.75
        assert snap["mean_batch_size"] == 3.0
        assert snap["sequential_queries"] == 18
        assert snap["exact"] == 3
        # busy span: first submit at t=0, last completion at t=2 → 1.5/s
        assert snap["instances_per_sec"] == 1.5
        assert snap["p50_latency"] == 1.0
        assert snap["max_latency"] == 2.0

    def test_failures_reduce_queue_depth(self):
        stats = ServiceStats(clock=FakeClock())
        stats.record_submit()
        stats.record_failure()
        assert stats.queue_depth == 0
        assert stats.snapshot()["failed"] == 1

    def test_empty_snapshot_is_all_zero(self):
        snap = ServiceStats(clock=FakeClock()).snapshot()
        assert snap["instances_per_sec"] == 0.0
        assert snap["batch_fill_ratio"] == 0.0
        assert snap["p99_latency"] == 0.0
