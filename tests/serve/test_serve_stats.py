"""ServiceStats: counter bookkeeping and snapshot fields."""

import threading

import repro.serve.stats as stats_module
from repro.serve import ServiceStats
from repro.serve.stats import padding_cells, percentile


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeResult:
    def __init__(self, sequential_queries=10, parallel_rounds=0, exact=True):
        self.sequential_queries = sequential_queries
        self.parallel_rounds = parallel_rounds
        self.exact = exact


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_median_and_tail(self):
        # Nearest-rank (ceil) semantics: rank ⌈q·n⌉ counted from 1.  The
        # old ``int(q * n)`` indexing overshot by one whole rank exactly
        # on rank boundaries (p50 of 100 values landed on the 51st).
        values = sorted(float(v) for v in range(100))
        assert percentile(values, 0.50) == 49.0  # the 50th value, not the 51st
        assert percentile(values, 0.99) == 98.0  # the 99th value
        assert percentile(values, 1.0) == 99.0  # clamped to the last rank

    def test_exact_rank_boundaries(self):
        # q·n integral is the biased case: ceil-rank must NOT advance to
        # the next value.
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.25) == 1.0
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 1.0) == 4.0

    def test_fractional_ranks_round_up(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.26) == 2.0
        assert percentile(values, 0.51) == 3.0
        assert percentile(values, 0.76) == 4.0

    def test_single_value_and_extremes(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0
        assert percentile([1.0, 2.0], 0.0) == 1.0  # q=0 clamps to the first rank


class TestCounters:
    def test_snapshot_follows_lifecycle(self):
        clock = FakeClock()
        stats = ServiceStats(clock=clock)
        for _ in range(4):
            stats.record_submit()
        assert stats.queue_depth == 4

        stats.record_batch(3, target=4)
        clock.now = 2.0
        for latency in (0.5, 1.0, 2.0):
            stats.record_complete(latency, FakeResult(sequential_queries=6))
        snap = stats.snapshot()
        assert snap["submitted"] == 4
        assert snap["completed"] == 3
        assert snap["queue_depth"] == 1
        assert snap["batches_executed"] == 1
        assert snap["batch_fill_ratio"] == 0.75
        assert snap["mean_batch_size"] == 3.0
        assert snap["sequential_queries"] == 18
        assert snap["exact"] == 3
        # busy span: first submit at t=0, last completion at t=2 → 1.5/s
        assert snap["instances_per_sec"] == 1.5
        assert snap["p50_latency"] == 1.0
        assert snap["max_latency"] == 2.0

    def test_fill_ratio_is_weighted_by_target(self):
        # One full big batch + one near-empty deadline flush: unweighted
        # averaging would report (1.0 + 0.125) / 2 ≈ 0.56; the weighted
        # ratio charges the straggler only for its capacity share.
        stats = ServiceStats(clock=FakeClock())
        stats.record_batch(64, target=64)
        stats.record_batch(1, target=8)
        snap = stats.snapshot()
        assert snap["batch_fill_ratio"] == 65 / 72
        assert snap["fill_p10"] == 0.125  # the tail flush shows up here

    def test_fill_p10_tracks_the_worst_batches(self):
        stats = ServiceStats(clock=FakeClock())
        for _ in range(16):
            stats.record_batch(10, target=10)
        for _ in range(4):
            stats.record_batch(1, target=10)
        snap = stats.snapshot()
        assert snap["fill_p10"] == 0.1
        assert snap["batch_fill_ratio"] == 164 / 200

    def test_fill_percentiles_expose_the_distribution(self):
        stats = ServiceStats(clock=FakeClock())
        for fill in (2, 4, 6, 8, 10):
            stats.record_batch(fill, target=10)
        snap = stats.snapshot()
        assert snap["fill_p10"] == 0.2
        assert snap["fill_p50"] == 0.6
        assert snap["fill_p90"] == 1.0

    def test_padding_cells_accumulate_across_batches(self):
        stats = ServiceStats(clock=FakeClock())
        stats.record_batch(3, target=4, padding_cells=7)
        stats.record_batch(4, target=4, padding_cells=0)
        stats.record_batch(2, target=4, padding_cells=5)
        assert stats.snapshot()["padding_cells"] == 12

    def test_padding_cells_helper(self):
        # B·max(w) − Σw on the padded substrates; identically zero for
        # ragged (no padded cells exist) and for empty batches.
        assert padding_cells("classes", [5, 3, 5, 2]) == 5
        assert padding_cells("subspace", [64, 64]) == 0
        assert padding_cells("synced", [128, 17]) == 111
        assert padding_cells("ragged", [5, 3, 5, 2]) == 0
        assert padding_cells("classes", []) == 0

    def test_failures_reduce_queue_depth(self):
        stats = ServiceStats(clock=FakeClock())
        stats.record_submit()
        stats.record_failure()
        assert stats.queue_depth == 0
        assert stats.snapshot()["failed"] == 1

    def test_empty_snapshot_is_all_zero(self):
        snap = ServiceStats(clock=FakeClock()).snapshot()
        assert snap["instances_per_sec"] == 0.0
        assert snap["batch_fill_ratio"] == 0.0
        assert snap["fill_p10"] == 0.0
        assert snap["p99_latency"] == 0.0


class TestAggregate:
    def test_merges_counters_and_spans(self):
        clock_a, clock_b = FakeClock(), FakeClock()
        a = ServiceStats(clock=clock_a)
        b = ServiceStats(clock=clock_b)
        a.record_submit()  # first submit at t=0 on shard a
        clock_b.now = 1.0
        b.record_submit()
        b.record_submit()
        a.record_batch(4, target=8, padding_cells=3)
        b.record_batch(8, target=8, padding_cells=4)
        clock_a.now = 2.0
        a.record_complete(0.5, FakeResult(sequential_queries=6))
        clock_b.now = 4.0  # the tier's busy span ends here
        b.record_complete(1.5, FakeResult(sequential_queries=4, exact=False))
        b.record_failure()

        view = ServiceStats.aggregate([a, b])
        assert view["submitted"] == 3
        assert view["completed"] == 2
        assert view["failed"] == 1
        assert view["exact"] == 1
        assert view["batches_executed"] == 2
        assert view["batch_fill_ratio"] == 12 / 16
        assert view["padding_cells"] == 7
        assert view["sequential_queries"] == 10
        # span: earliest first submit (t=0, shard a) → latest completion
        # (t=4, shard b) → 2 completions / 4 s.
        assert view["instances_per_sec"] == 0.5
        assert view["max_latency"] == 1.5
        per_shard = view["per_shard"]
        assert len(per_shard) == 2
        assert per_shard[0]["completed"] == 1
        assert per_shard[1]["failed"] == 1

    def test_empty_aggregate(self):
        view = ServiceStats.aggregate([])
        assert view["submitted"] == 0
        assert view["per_shard"] == []


class TestWindowBounds:
    """Percentiles run over the most-recent window, not lifetime history."""

    def test_latency_window_keeps_most_recent_only(self, monkeypatch):
        monkeypatch.setattr(stats_module, "LATENCY_WINDOW", 8)
        stats = ServiceStats(clock=FakeClock())
        # 100 slow completions followed by 8 fast ones: the overflowed
        # window must report the fast regime only.
        for _ in range(100):
            stats.record_complete(50.0, FakeResult())
        for latency in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
            stats.record_complete(latency, FakeResult())
        snap = stats.snapshot()
        assert len(stats._latencies) == 8
        assert snap["p50_latency"] == 4.0
        assert snap["p99_latency"] == 8.0
        assert snap["max_latency"] == 8.0
        assert snap["completed"] == 108  # lifetime counters keep counting

    def test_fill_window_keeps_most_recent_only(self, monkeypatch):
        monkeypatch.setattr(stats_module, "FILL_WINDOW", 4)
        stats = ServiceStats(clock=FakeClock())
        for _ in range(50):
            stats.record_batch(1, target=10)  # old trickle regime
        for _ in range(4):
            stats.record_batch(10, target=10)  # current full-batch regime
        snap = stats.snapshot()
        assert len(stats._fills) == 4
        assert snap["fill_p10"] == 1.0
        # The weighted mean stays lifetime-wide by design.
        assert snap["batch_fill_ratio"] == 90 / 540

    def test_window_bound_holds_under_concurrent_writers(self, monkeypatch):
        monkeypatch.setattr(stats_module, "LATENCY_WINDOW", 16)
        monkeypatch.setattr(stats_module, "FILL_WINDOW", 16)
        stats = ServiceStats(clock=FakeClock())
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(500):
                    stats.record_submit()
                    stats.record_batch(4, target=8)
                    stats.record_complete(float(worker * 1000 + i), FakeResult())
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(stats._latencies) == 16
        assert len(stats._fills) == 16
        snap = stats.snapshot()
        assert snap["submitted"] == snap["completed"] == 2000
        # Every surviving window entry is a real recorded value and the
        # percentile surface stays within the window's value range.
        window = sorted(stats._latencies)
        assert window[0] <= snap["p50_latency"] <= window[-1]
        assert snap["max_latency"] == window[-1]
