"""SamplerService: equivalence, re-packing, deadlines, shutdown, dynamics."""

import numpy as np
import pytest

from repro.analysis import InstanceSpec
from repro.batch import run_batched
from repro.core import SequentialSampler, solve_plan
from repro.database import WorkloadSpec, round_robin, zipf_dataset
from repro.database.dynamic import random_update_stream
from repro.serve import SamplerService, ServiceClosedError
from repro.utils.rng import as_generator, spawn_seed

#: Generous wall-clock allowance for future resolution — CI runners stall.
WAIT = 60.0


def spec_of(total: int, n_machines: int = 2, tag: str = "") -> InstanceSpec:
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=64, total=total),
        n_machines=n_machines,
        tag=tag,
    )


def mixed_specs():
    """Six specs over two overlap regimes → at least two schedule shapes."""
    return [spec_of(48, 2, f"hi{k}") if k % 2 else spec_of(6, 3, f"lo{k}")
            for k in range(6)]


def assert_rows_equivalent(served_rows, reference_rows):
    """The ISSUE acceptance bar: 1e-12 on fidelity, exact elsewhere."""
    assert len(served_rows) == len(reference_rows)
    for mine, ref in zip(served_rows, reference_rows):
        assert mine["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
        assert {k: v for k, v in mine.items() if k != "fidelity"} == {
            k: v for k, v in ref.items() if k != "fidelity"
        }


class TestBatchedEquivalence:
    def test_served_rows_match_run_batched(self):
        specs = mixed_specs()
        with SamplerService(rng=7, batch_size=4, flush_deadline=0.01) as service:
            for spec in specs:
                service.submit(spec)
            rows = service.rows()
        assert_rows_equivalent(rows, run_batched(specs, rng=7, batch_size=4).rows)

    def test_parallel_model(self):
        specs = mixed_specs()
        with SamplerService(
            model="parallel", rng=3, batch_size=4, flush_deadline=0.01
        ) as service:
            for spec in specs:
                service.submit(spec)
            rows = service.rows()
        reference = run_batched(specs, model="parallel", rng=3, batch_size=4)
        assert_rows_equivalent(rows, reference.rows)
        assert all(row["parallel_rounds"] > 0 for row in rows)

    def test_futures_resolve_in_submission_order(self):
        specs = mixed_specs()
        with SamplerService(rng=0, batch_size=3, flush_deadline=0.01) as service:
            futures = [service.submit(spec) for spec in specs]
            assert service.requests() == futures
            labels = [req.label for req, _ in service.iter_results()]
        assert labels == [spec.label() for spec in specs]


class TestShapeRepacking:
    def test_mixed_shapes_split_into_shape_groups(self):
        """With no full or deadline flush possible, the drain executes one
        batch per distinct schedule shape — shape-keyed re-packing."""
        specs = mixed_specs()
        # Reproduce the service's seed draws to find the expected shapes.
        gen = as_generator(11)
        shapes = set()
        for spec in specs:
            db = spec.build(rng=spawn_seed(gen))
            plan = solve_plan(db.initial_overlap())
            shapes.add((plan.grover_reps, plan.needs_final))
        assert len(shapes) >= 2  # the fixture must actually mix shapes

        service = SamplerService(rng=11, batch_size=64, flush_deadline=30.0)
        for spec in specs:
            service.submit(spec)
        service.close(drain=True)
        telemetry = service.telemetry()
        assert telemetry["batches_executed"] == len(shapes)
        assert telemetry["completed"] == len(specs)
        assert telemetry["exact"] == len(specs)

    def test_full_group_flushes_before_deadline(self):
        """A shape group hitting batch_size flushes immediately even though
        the deadline is far away.  ``nu`` is pinned so every instance has
        the same overlap M/(νN) — hence provably the same shape — no
        matter what its child seed drew."""
        specs = [
            InstanceSpec(
                workload=WorkloadSpec.of("zipf", universe=64, total=48),
                n_machines=2,
                nu=48,
                tag=f"r{k}",
            )
            for k in range(4)
        ]
        with SamplerService(rng=5, batch_size=4, flush_deadline=30.0) as service:
            start = service._clock()
            futures = [service.submit(spec) for spec in specs]
            results = [f.result(timeout=WAIT) for f in futures]
            elapsed = service._clock() - start
        assert all(r.exact for r in results)
        assert elapsed < 10.0  # full flush, not the 30 s deadline


class TestDeadlineFlush:
    def test_partial_batch_served_without_close(self):
        """Fewer requests than batch_size still complete, bounded by the
        flush deadline — no drain needed."""
        service = SamplerService(rng=1, batch_size=256, flush_deadline=0.05)
        try:
            futures = [service.submit(spec_of(24)) for _ in range(3)]
            results = [f.result(timeout=WAIT) for f in futures]
            assert all(r.exact for r in results)
            telemetry = service.telemetry()
            assert telemetry["batches_executed"] >= 1
            assert telemetry["batch_fill_ratio"] < 1.0  # partial by design
        finally:
            service.close()

    def test_latency_tracked_per_request(self):
        service = SamplerService(rng=1, batch_size=256, flush_deadline=0.02)
        try:
            service.submit(spec_of(24)).result(timeout=WAIT)
            telemetry = service.telemetry()
            assert telemetry["p50_latency"] > 0.0
            assert telemetry["p99_latency"] >= telemetry["p50_latency"]
        finally:
            service.close()


class TestShutdown:
    def test_graceful_close_drains_everything(self):
        """Requests parked behind a huge deadline + oversize batch are all
        executed by close(drain=True)."""
        specs = [spec_of(24, tag=f"d{k}") for k in range(5)]
        service = SamplerService(rng=2, batch_size=64, flush_deadline=60.0)
        futures = [service.submit(spec) for spec in specs]
        assert not any(f.done() for f in futures)  # nothing can flush yet
        service.close(drain=True)
        assert all(f.done() for f in futures)
        assert all(f.result().exact for f in futures)
        assert service.telemetry()["queue_depth"] == 0

    def test_submit_after_close_rejected(self):
        service = SamplerService(rng=0)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(spec_of(24))

    def test_close_is_idempotent(self):
        service = SamplerService(rng=0)
        service.close()
        service.close()

    def test_abandoning_close_fails_pending_requests(self):
        service = SamplerService(rng=2, batch_size=64, flush_deadline=60.0)
        futures = [service.submit(spec_of(24)) for _ in range(3)]
        service.close(drain=False)
        for future in futures:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=WAIT)
        assert service.telemetry()["failed"] == 3


class TestFailureIsolation:
    def test_bad_spec_fails_only_its_future(self):
        bad = InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=64, total=24), n_machines=0
        )
        with SamplerService(rng=4, batch_size=4, flush_deadline=0.01) as service:
            good_before = service.submit(spec_of(24))
            failed = service.submit(bad)
            good_after = service.submit(spec_of(24))
            assert good_before.result(timeout=WAIT).exact
            assert good_after.result(timeout=WAIT).exact
            assert failed.exception(timeout=WAIT) is not None
        assert service.telemetry()["failed"] == 1
        assert service.telemetry()["completed"] == 2


class TestStackedDenseServing:
    """The dispatcher's backend-keyed packing over the (B, N, 2) stack."""

    def test_subspace_rows_match_run_batched_subspace(self):
        specs = mixed_specs()
        with SamplerService(
            rng=7, batch_size=4, flush_deadline=0.01, backend="subspace"
        ) as service:
            for spec in specs:
                service.submit(spec)
            rows = service.rows()
        reference = run_batched(specs, rng=7, batch_size=4, backend="subspace")
        assert_rows_equivalent(rows, reference.rows)
        assert all(row["backend"] == "subspace" for row in rows)

    def test_auto_backend_resolves_per_request_universe(self):
        """A mixed-N auto stream packs dense and compressed batches side
        by side — the packer key carries the resolved backend."""
        small = spec_of(24, tag="small")  # universe 64 → subspace
        large = InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=10**5, total=64),
            n_machines=2,
            tag="large",  # universe ≥ threshold → classes
        )
        with SamplerService(
            rng=3, batch_size=8, flush_deadline=0.01, backend="auto"
        ) as service:
            futures = {
                "small": service.submit(small),
                "large": service.submit(large),
            }
            results = {k: f.result(timeout=WAIT) for k, f in futures.items()}
        assert results["small"].backend == "subspace"
        assert results["large"].backend == "classes"
        assert all(r.exact for r in results.values())

    def test_live_requests_stay_on_classes_under_auto(self):
        db = round_robin(zipf_dataset(128, 48, exponent=1.2, rng=0), n_machines=2)
        stream = random_update_stream(db, 5, rng=1)
        stream.class_state()
        with SamplerService(
            rng=0, batch_size=2, flush_deadline=0.01, backend="auto"
        ) as service:
            live = service.submit_live(stream).result(timeout=WAIT)
            spec = service.submit(spec_of(24)).result(timeout=WAIT)
        assert live.backend == "classes"  # snapshots are count-class views
        assert spec.backend == "subspace"
        assert live.exact and spec.exact

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(Exception, match="unknown stacked backend"):
            SamplerService(backend="oracles")
        with pytest.raises(Exception, match="unknown stacked backend"):
            SamplerService(model="parallel", backend="subspace")

    def test_max_dense_dimension_caps_auto_onto_classes(self):
        """The serving twin of SamplingRequest.max_dense_dimension: a cap
        below 2N must push auto resolution back to classes."""
        with SamplerService(
            rng=0, batch_size=2, flush_deadline=0.01,
            backend="auto", max_dense_dimension=8,
        ) as service:
            result = service.submit(spec_of(24)).result(timeout=WAIT)
        assert result.backend == "classes"  # universe 64, 2N = 128 > 8
        assert result.exact

    def test_nonpositive_max_dense_dimension_rejected(self):
        with pytest.raises(Exception, match="max_dense_dimension"):
            SamplerService(max_dense_dimension=0)

    def test_explicit_dense_service_rejects_live_requests(self):
        """Mirror of the front-door planner: a stream snapshot cannot run
        on an explicitly pinned dense substrate — no silent substitution."""
        from repro.errors import ValidationError

        db = round_robin(zipf_dataset(64, 24, exponent=1.2, rng=0), n_machines=2)
        stream = random_update_stream(db, 3, rng=1)
        service = SamplerService(backend="subspace")
        try:
            with pytest.raises(ValidationError, match="live snapshot"):
                service.submit_live(stream)
        finally:
            service.close()


def mixed_nu_specs():
    """Eight specs over four total-count regimes → heterogeneous ν and
    at least two schedule shapes (the padded path's worst case)."""
    return [
        InstanceSpec(
            workload=WorkloadSpec.of("zipf", universe=64, total=6 * (k % 4 + 1)),
            n_machines=2 + k % 2,
            tag=f"m{k}",
        )
        for k in range(8)
    ]


class TestRaggedServing:
    def test_ragged_rows_match_run_batched(self):
        specs = mixed_nu_specs()
        with SamplerService(
            backend="ragged", rng=7, batch_size=4, flush_deadline=0.01
        ) as service:
            for spec in specs:
                service.submit(spec)
            rows = service.rows()
        reference = run_batched(specs, rng=7, batch_size=4, backend="ragged")
        assert_rows_equivalent(rows, reference.rows)
        assert all(row["backend"] == "ragged" for row in rows)

    def test_mixed_shapes_pool_into_one_csr_batch(self):
        """Where the classes service splits per shape (see
        TestShapeRepacking), the ragged service drains everything as ONE
        zero-padding batch."""
        specs = mixed_nu_specs()
        service = SamplerService(
            backend="ragged", rng=11, batch_size=64, flush_deadline=30.0
        )
        for spec in specs:
            service.submit(spec)
        service.close(drain=True)
        telemetry = service.telemetry()
        assert telemetry["batches_executed"] == 1
        assert telemetry["padding_cells"] == 0
        assert telemetry["completed"] == len(specs)
        assert telemetry["exact"] == len(specs)

    def test_classes_service_reports_padding_on_the_same_stream(self):
        """The contrast stat: the padded path charges ν-heterogeneity as
        padding_cells > 0 — the signal to switch the tier to ragged."""
        specs = mixed_nu_specs()
        service = SamplerService(rng=11, batch_size=64, flush_deadline=30.0)
        for spec in specs:
            service.submit(spec)
        service.close(drain=True)
        telemetry = service.telemetry()
        assert telemetry["batches_executed"] >= 2  # per-shape groups
        assert telemetry["padding_cells"] > 0

    def test_auto_service_pools_onto_ragged_when_threshold_armed(self):
        from repro.config import CONFIG

        universe = CONFIG.classes_universe_threshold  # auto resolves to classes
        specs = [
            InstanceSpec(
                workload=WorkloadSpec.of("zipf", universe=universe, total=6 * (k + 1)),
                n_machines=2,
                tag=f"a{k}",
            )
            for k in range(4)
        ]
        before = CONFIG.ragged_fill_threshold
        CONFIG.ragged_fill_threshold = 0.95
        try:
            with SamplerService(
                backend="auto", rng=13, batch_size=4, flush_deadline=0.01
            ) as service:
                futures = [service.submit(spec) for spec in specs]
                results = [f.result(timeout=WAIT) for f in futures]
        finally:
            CONFIG.ragged_fill_threshold = before
        assert all(r.backend == "ragged" for r in results)
        assert all(r.exact for r in results)

    def test_live_requests_allowed_on_ragged(self):
        db = round_robin(zipf_dataset(64, 12, exponent=1.2, rng=3), n_machines=3)
        stream = random_update_stream(db, 5, rng=5)
        stream.class_state()
        with SamplerService(
            backend="ragged", rng=1, batch_size=2, flush_deadline=0.01
        ) as service:
            row = service.submit_live(stream, label="live-ragged").row()
        assert row["label"] == "live-ragged"
        assert row["backend"] == "ragged"
        assert row["exact"] is True


class TestDynamicServing:
    def _stream(self, rng=0):
        db = round_robin(zipf_dataset(128, 48, exponent=1.2, rng=rng), n_machines=3)
        return db, random_update_stream(db, 30, insert_probability=0.8, rng=rng + 1)

    def test_mid_stream_requests_pin_submission_state(self):
        db, stream = self._stream()
        stream.class_state()  # prime the live view
        with SamplerService(rng=0, batch_size=4, flush_deadline=0.01) as service:
            before = service.submit_live(stream, label="before")
            m_before = db.total_count
            stream.apply_all()
            after = service.submit_live(stream, label="after")
            result_before = before.result(timeout=WAIT)
            result_after = after.result(timeout=WAIT)
        assert result_before.public_parameters["M"] == m_before
        assert result_after.public_parameters["M"] == db.total_count
        assert result_before.exact and result_after.exact

    def test_live_result_matches_fresh_per_instance_run(self):
        db, stream = self._stream(rng=3)
        stream.class_state()
        stream.apply_all()
        with SamplerService(
            rng=0, batch_size=4, flush_deadline=0.01, include_probabilities=True
        ) as service:
            served = service.submit_live(stream).result(timeout=WAIT)
        reference = SequentialSampler(db, backend="classes").run()
        assert served.ledger.summary() == reference.ledger.summary()
        assert served.plan == reference.plan
        np.testing.assert_allclose(
            served.output_probabilities, reference.output_probabilities, atol=1e-10
        )

    def test_no_class_map_rebuild_mid_stream(self, monkeypatch):
        """The no-rebuild contract: after the live view is primed, serving
        any number of mid-update requests never reconstructs a ClassVector
        from scratch — and still charges the honest full-run ledger."""
        from repro.qsim.classvector import ClassVector

        db, stream = self._stream(rng=5)
        stream.class_state()  # the one and only O(nN)-derived build
        rebuilds = []
        original = ClassVector.uniform.__func__

        def counting_uniform(cls, *args, **kwargs):
            rebuilds.append(1)
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(ClassVector, "uniform", classmethod(counting_uniform))
        with SamplerService(rng=0, batch_size=2, flush_deadline=0.01) as service:
            futures = []
            for _ in range(3):
                futures.append(service.submit_live(stream))
                stream.apply_next(10)
            futures.append(service.submit_live(stream))
            results = [f.result(timeout=WAIT) for f in futures]
        assert rebuilds == []  # snapshots only — no rebuild, ever
        # Honest ledgers still: every served run charges the Lemma 4.2
        # sandwich for its own plan, same as an unbatched run would.
        for result in results:
            expected = 2 * db.n_machines * result.plan.d_applications
            assert result.sequential_queries == expected

    def test_row_for_live_request_carries_audit_columns(self):
        db, stream = self._stream(rng=7)
        stream.class_state()
        with SamplerService(rng=0, batch_size=2, flush_deadline=0.01) as service:
            row = service.submit_live(stream, label="live-7").row()
        assert row["label"] == "live-7"
        assert row["backend"] == "classes"
        assert row["M"] == db.total_count
        assert row["n"] == db.n_machines
        assert row["exact"] is True


class TestLongLivedHousekeeping:
    def test_purge_completed_drops_resolved_requests(self):
        service = SamplerService(rng=0, batch_size=2, flush_deadline=0.01)
        try:
            futures = [service.submit(spec_of(24)) for _ in range(4)]
            for future in futures:
                future.result(timeout=WAIT)
            assert service.purge_completed() == 4
            assert service.requests() == []
            # the service keeps serving, indices stay monotone
            late = service.submit(spec_of(24))
            assert late.index == 4
            assert late.result(timeout=WAIT).exact
            # futures handed out earlier still hold their results
            assert all(f.result().exact for f in futures)
            # cumulative telemetry is unaffected by purging
            assert service.telemetry()["completed"] == 5
        finally:
            service.close()

    def test_snapshot_released_after_execution(self):
        with SamplerService(rng=0, batch_size=2, flush_deadline=0.01) as service:
            future = service.submit(spec_of(24))
            future.result(timeout=WAIT)
        assert future._instance is None  # the O(N) snapshot is freed

    def test_concurrent_close_calls_both_drain(self):
        import threading

        service = SamplerService(rng=0, batch_size=64, flush_deadline=60.0)
        futures = [service.submit(spec_of(24)) for _ in range(6)]
        threads = [threading.Thread(target=service.close) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=WAIT)
            assert not t.is_alive()
        assert all(f.result(timeout=WAIT).exact for f in futures)
