"""ShmArena / ArenaClient: allocation, generations, array round trips."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.serve.shm import (
    ARRAY_ALIGN,
    BLOCK_ALIGN,
    BLOCK_HEADER,
    ArenaClient,
    ShmArena,
    arrays_nbytes,
    read_arrays,
    write_arrays,
)


@pytest.fixture
def arena():
    with ShmArena("test-arena", 1 << 16) as a:
        yield a


class TestArenaAllocation:
    def test_alloc_free_reuses_space(self, arena):
        first = arena.alloc(1000)
        assert first is not None
        assert first.offset == 0
        arena.free(first)
        again = arena.alloc(1000)
        assert again is not None
        assert again.offset == 0  # the freed run was coalesced back
        assert again.generation > first.generation

    def test_blocks_are_aligned_and_disjoint(self, arena):
        blocks = [arena.alloc(100) for _ in range(5)]
        offsets = [b.offset for b in blocks]
        assert all(off % BLOCK_ALIGN == 0 for off in offsets)
        for a, b in zip(blocks, blocks[1:]):
            assert b.offset >= a.offset + a.size

    def test_full_arena_returns_none(self, arena):
        assert arena.alloc(arena.capacity) is None
        huge = arena.alloc(arena.capacity - BLOCK_HEADER)
        assert huge is not None
        assert arena.alloc(1) is None  # nothing left
        arena.free(huge)
        assert arena.alloc(1) is not None

    def test_free_coalesces_adjacent_runs(self, arena):
        a = arena.alloc(100)
        b = arena.alloc(100)
        c = arena.alloc(100)
        arena.free(a)
        arena.free(c)
        arena.free(b)  # middle free must merge all three runs
        big = arena.alloc(arena.capacity - BLOCK_HEADER)
        assert big is not None

    def test_double_free_raises(self, arena):
        block = arena.alloc(64)
        arena.free(block)
        with pytest.raises(ValidationError, match="stale handle or double free"):
            arena.free(block)

    def test_stale_handle_payload_raises(self, arena):
        block = arena.alloc(64)
        arena.free(block)
        arena.alloc(64)  # recycles the offset under a new generation
        with pytest.raises(ValidationError):
            arena.payload(block)


class TestPeerViews:
    def test_peer_sees_owner_bytes(self, arena):
        client = ArenaClient()
        try:
            block = arena.alloc(256)
            arena.payload(block)[:4] = b"ping"
            assert bytes(client.view(block)[:4]) == b"ping"
        finally:
            client.detach_all()

    def test_stale_generation_detected_peer_side(self, arena):
        client = ArenaClient()
        try:
            block = arena.alloc(256)
            arena.free(block)
            recycled = arena.alloc(256)
            assert recycled.offset == block.offset
            with pytest.raises(ValidationError, match="generation"):
                client.view(block)
            client.view(recycled)  # the live handle still works
        finally:
            client.detach_all()


class TestArrayMarshalling:
    def test_round_trip_preserves_values_and_dtypes(self, arena):
        arrays = {
            "amps": (np.arange(12, dtype=np.complex128) * (1 + 2j)).reshape(3, 4),
            "sizes": np.array([3, 1, 4], dtype=np.int64),
            "fids": np.linspace(0.0, 1.0, 7),
        }
        block = arena.alloc(arrays_nbytes(arrays))
        layout = write_arrays(arena.payload(block), arrays)
        client = ArenaClient()
        try:
            out = read_arrays(client.view(block), layout)
            assert set(out) == set(arrays)
            for name in arrays:
                assert out[name].dtype == arrays[name].dtype
                assert np.array_equal(out[name], arrays[name])
        finally:
            client.detach_all()

    def test_reads_are_zero_copy_views(self, arena):
        arrays = {"x": np.arange(8, dtype=np.float64)}
        block = arena.alloc(arrays_nbytes(arrays))
        layout = write_arrays(arena.payload(block), arrays)
        client = ArenaClient()
        try:
            view = read_arrays(client.view(block), layout)["x"]
            # Owner-side mutation shows through: same physical memory.
            np.frombuffer(arena.payload(block), dtype=np.float64, count=8)
            owner = np.ndarray(
                (8,), dtype=np.float64, buffer=arena.payload(block), offset=0
            )
            owner[0] = 99.0
            assert view[0] == 99.0
        finally:
            client.detach_all()

    def test_array_payloads_are_aligned(self, arena):
        arrays = {
            "a": np.zeros(3, dtype=np.int8),
            "b": np.zeros(5, dtype=np.complex128),
        }
        block = arena.alloc(arrays_nbytes(arrays))
        layout = write_arrays(arena.payload(block), arrays)
        assert all(offset % ARRAY_ALIGN == 0 for _, _, _, offset in layout)

    def test_overflow_raises(self, arena):
        block = arena.alloc(16)
        with pytest.raises(ValidationError, match="payload bytes"):
            write_arrays(arena.payload(block), {"x": np.zeros(1024)})

    def test_noncontiguous_input_written_contiguously(self, arena):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = base[:, ::2]  # non-contiguous view
        arrays = {"s": strided}
        block = arena.alloc(arrays_nbytes(arrays))
        layout = write_arrays(arena.payload(block), arrays)
        client = ArenaClient()
        try:
            out = read_arrays(client.view(block), layout)["s"]
            assert np.array_equal(out, strided)
        finally:
            client.detach_all()
