"""ShapePacker: full flushes, deadline flushes, ordering, drain."""

import pytest

from repro.errors import ValidationError
from repro.serve import ShapePacker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


class TestFullFlush:
    def test_full_group_flushes_immediately(self, clock):
        packer = ShapePacker(batch_size=3, flush_deadline=10.0, clock=clock)
        for item in "abc":
            packer.add("shape", item)
        assert list(packer.pop_ready()) == [["a", "b", "c"]]
        assert packer.pending == 0

    def test_oversized_group_flushes_in_chunks(self, clock):
        packer = ShapePacker(batch_size=2, flush_deadline=10.0, clock=clock)
        for item in range(5):
            packer.add("shape", item)
        batches = list(packer.pop_ready())
        assert batches == [[0, 1], [2, 3]]  # the trailing 1 is not overdue
        assert packer.pending == 1

    def test_groups_do_not_mix(self, clock):
        packer = ShapePacker(batch_size=2, flush_deadline=10.0, clock=clock)
        packer.add("x", 1)
        packer.add("y", 2)
        packer.add("x", 3)
        packer.add("y", 4)
        assert list(packer.pop_ready()) == [[1, 3], [2, 4]]


class TestDeadlineFlush:
    def test_partial_group_waits_until_deadline(self, clock):
        packer = ShapePacker(batch_size=4, flush_deadline=1.0, clock=clock)
        packer.add("shape", "a")
        assert list(packer.pop_ready()) == []
        clock.advance(0.5)
        assert list(packer.pop_ready()) == []
        clock.advance(0.6)
        assert list(packer.pop_ready()) == [["a"]]

    def test_deadline_measured_from_oldest(self, clock):
        packer = ShapePacker(batch_size=4, flush_deadline=1.0, clock=clock)
        packer.add("shape", "old")
        clock.advance(0.9)
        packer.add("shape", "new")
        clock.advance(0.2)  # old is 1.1s, new only 0.2s — both flush together
        assert list(packer.pop_ready()) == [["old", "new"]]

    def test_zero_deadline_flushes_every_add(self, clock):
        packer = ShapePacker(batch_size=100, flush_deadline=0.0, clock=clock)
        packer.add("shape", 1)
        assert list(packer.pop_ready()) == [[1]]

    def test_seconds_until_flush(self, clock):
        packer = ShapePacker(batch_size=4, flush_deadline=1.0, clock=clock)
        assert packer.seconds_until_flush() is None
        packer.add("shape", "a")
        clock.advance(0.25)
        assert packer.seconds_until_flush() == pytest.approx(0.75)
        clock.advance(2.0)
        assert packer.seconds_until_flush() == 0.0


class TestDrain:
    def test_drain_flushes_everything_chunked(self, clock):
        packer = ShapePacker(batch_size=2, flush_deadline=100.0, clock=clock)
        for item in range(3):
            packer.add("x", item)
        packer.add("y", "solo")
        batches = list(packer.drain())
        assert batches == [[0, 1], [2], ["solo"]]
        assert packer.pending == 0
        assert packer.seconds_until_flush() is None


class TestValidationGuards:
    def test_bad_batch_size(self, clock):
        with pytest.raises(ValidationError):
            ShapePacker(batch_size=0, flush_deadline=1.0, clock=clock)

    def test_negative_deadline(self, clock):
        with pytest.raises(ValidationError):
            ShapePacker(batch_size=1, flush_deadline=-0.1, clock=clock)
