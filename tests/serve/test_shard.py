"""ShardedSamplerService: routing, equivalence, recovery, telemetry."""

import os
import signal
import time

import pytest

from repro.analysis.sweep import InstanceSpec
from repro.database import WorkloadSpec, round_robin, zipf_dataset
from repro.database.dynamic import random_update_stream
from repro.errors import ValidationError
from repro.serve import SamplerService, ServiceClosedError, ShardedSamplerService
from repro.serve.shard import _affinity, shard_for


def spec_of(universe=256, total=40, n_machines=4, tag=""):
    return InstanceSpec(
        workload=WorkloadSpec.of("uniform", universe=universe, total=total),
        n_machines=n_machines,
        tag=tag,
    )


class TestSharding:
    def test_shard_for_is_stable_and_in_range(self):
        key = _affinity(spec_of(), "x", "classes")
        assert shard_for(key, 4) == shard_for(key, 4)
        assert 0 <= shard_for(key, 4) < 4

    def test_same_recipe_lands_on_one_shard(self):
        key_a = _affinity(spec_of(tag="a"), "a", "classes")
        key_b = _affinity(spec_of(tag="a"), "a", "classes")
        assert shard_for(key_a, 4) == shard_for(key_b, 4)

    def test_construction_validates_knobs(self):
        with pytest.raises(ValidationError):
            ShardedSamplerService(shards=0)
        with pytest.raises(ValidationError):
            ShardedSamplerService(shards=2, max_dense_dimension=-1)
        with pytest.raises(Exception):
            ShardedSamplerService(shards=2, backend="no-such-backend")


class TestEquivalence:
    def test_rows_match_unsharded_service(self):
        # Same request stream + rng → identical rows, independent of the
        # shard count: the tier's core determinism contract.
        specs = [spec_of(tag=f"t{i % 3}") for i in range(24)]
        with SamplerService(rng=42, flush_deadline=0.01) as plain:
            plain_futures = [plain.submit(s) for s in specs]
        plain_rows = [f.row() for f in plain_futures]

        with ShardedSamplerService(shards=2, rng=42, flush_deadline=0.01) as tier:
            futures = [tier.submit(s) for s in specs]
            rows = [f.row() for f in futures]
            telemetry = tier.telemetry()

        assert len(rows) == len(plain_rows)
        for ours, ref in zip(rows, plain_rows):
            assert set(ours) == set(ref)
            assert ours["label"] == ref["label"]
            assert ours["exact"] == ref["exact"]
            assert ours["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
            assert ours["sequential_queries"] == ref["sequential_queries"]
        assert telemetry["completed"] == 24
        assert telemetry["shards"] == 2
        assert telemetry["shm_batches"] >= 1
        assert telemetry["worker_restarts"] == 0

    def test_results_carry_full_sampling_surface(self):
        with ShardedSamplerService(
            shards=2, rng=7, include_probabilities=True, flush_deadline=0.01
        ) as tier:
            future = tier.submit(spec_of(universe=128, total=20))
            result = future.result(timeout=30)
        assert result.exact
        assert result.output_probabilities is not None
        assert result.ledger.sequential_queries > 0
        assert result.schedule.fingerprint()
        assert result.public_parameters["N"] == 128

    def test_live_snapshots_round_trip(self):
        db = round_robin(zipf_dataset(64, 12, exponent=1.2, rng=3), n_machines=3)
        stream = random_update_stream(db, 5, rng=5)
        stream.class_state()  # prime the O(1)-maintained view
        with ShardedSamplerService(shards=2, rng=1, flush_deadline=0.01) as tier:
            future = tier.submit_live(stream)
            result = future.result(timeout=30)
        assert result.exact
        row = future.row()
        assert row["label"] == "live"

    def test_subspace_backend_round_trips_dense_states(self):
        with ShardedSamplerService(
            shards=2, rng=9, backend="subspace", flush_deadline=0.01,
            include_probabilities=True,
        ) as tier:
            futures = [tier.submit(spec_of(universe=64, total=10)) for _ in range(6)]
            results = [f.result(timeout=30) for f in futures]
        assert all(r.backend == "subspace" for r in results)
        assert all(r.exact for r in results)


class TestRaggedSharding:
    def mixed_nu_specs(self):
        return [
            InstanceSpec(
                workload=WorkloadSpec.of(
                    "zipf", universe=64, total=6 * (k % 4 + 1)
                ),
                n_machines=2 + k % 2,
                tag=f"m{k}",
            )
            for k in range(12)
        ]

    def test_pooled_affinity_ignores_spec_shape(self):
        # Heterogeneous recipes must converge on one shard when pooled —
        # otherwise a trickle of mixed-ν requests fragments across shards
        # and no ragged batch ever fills.
        key_a = _affinity(spec_of(universe=64, tag="a"), "a", "ragged", pooled=True)
        key_b = _affinity(spec_of(universe=256, tag="b"), "b", "ragged", pooled=True)
        assert key_a == key_b
        assert key_a != _affinity(spec_of(universe=64, tag="a"), "a", "ragged")
        # the fault-profile mask still partitions the pool
        masked = _affinity(
            spec_of(), "a", "ragged", fault_mask=(1,), pooled=True
        )
        assert masked != key_a

    def test_ragged_rows_match_unsharded(self):
        specs = self.mixed_nu_specs()
        with SamplerService(
            backend="ragged", rng=42, flush_deadline=0.01
        ) as plain:
            plain_rows = [plain.submit(s).row() for s in specs]

        with ShardedSamplerService(
            shards=2, backend="ragged", rng=42, flush_deadline=0.01
        ) as tier:
            futures = [tier.submit(s) for s in specs]
            rows = [f.row() for f in futures]
            telemetry = tier.telemetry()

        for ours, ref in zip(rows, plain_rows):
            assert ours["label"] == ref["label"]
            assert ours["backend"] == "ragged"
            assert ours["exact"] == ref["exact"]
            assert ours["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
            assert ours["sequential_queries"] == ref["sequential_queries"]
        assert telemetry["completed"] == len(specs)
        # CSR batches cross the shm wire with zero padding
        assert telemetry["padding_cells"] == 0
        assert telemetry["shm_batches"] >= 1

    def test_live_allowed_on_ragged_tier(self):
        db = round_robin(zipf_dataset(64, 12, exponent=1.2, rng=3), n_machines=3)
        stream = random_update_stream(db, 5, rng=5)
        stream.class_state()
        with ShardedSamplerService(
            shards=2, backend="ragged", rng=1, flush_deadline=0.01
        ) as tier:
            result = tier.submit_live(stream).result(timeout=30)
        assert result.exact
        assert result.backend == "ragged"


class TestLifecycle:
    def test_submit_after_close_raises(self):
        tier = ShardedSamplerService(shards=1, rng=0)
        tier.close()
        with pytest.raises(ServiceClosedError):
            tier.submit(spec_of())

    def test_close_without_drain_fails_pending(self):
        tier = ShardedSamplerService(shards=1, rng=0, flush_deadline=30.0,
                                     batch_size=10_000)
        future = tier.submit(spec_of())
        tier.close(drain=False)
        # Either the worker already resolved it, or it failed closed;
        # it must not hang.
        try:
            future.result(timeout=10)
        except ServiceClosedError:
            pass

    def test_close_is_idempotent(self):
        tier = ShardedSamplerService(shards=1, rng=0)
        tier.close()
        tier.close()

    def test_live_rejected_on_dense_backend(self):
        with ShardedSamplerService(shards=1, rng=0, backend="subspace") as tier:
            db = round_robin(zipf_dataset(32, 6, exponent=1.2, rng=1), n_machines=2)
            stream = random_update_stream(db, 3, rng=2)
            with pytest.raises(ValidationError, match="live"):
                tier.submit_live(stream)


class TestWorkerDeathRecovery:
    def test_killed_shard_requeues_and_completes(self):
        # Kill one worker mid-stream: its in-flight requests must be
        # re-queued to a live shard, every row still comes back in
        # submission order, and the restart is surfaced in telemetry.
        specs = [spec_of(tag=f"t{i % 4}") for i in range(32)]
        with ShardedSamplerService(
            shards=2, rng=11, flush_deadline=0.5, batch_size=64
        ) as tier:
            futures = [tier.submit(s) for s in specs]
            # With a long deadline and a big batch target, requests are
            # parked in the workers' packers — kill one now.
            victim = tier._shards[0].process
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while tier.worker_restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            rows = [f.row() for f in futures]  # blocks until all complete
            telemetry = tier.telemetry()
        assert telemetry["worker_restarts"] >= 1
        assert telemetry["requeued_batches"] >= 1
        assert [row["label"] for row in rows] == [s.label() for s in specs]
        assert telemetry["completed"] == 32
        assert telemetry["failed"] == 0
        # The flight recorder dumped its ring at the moment of death: the
        # dump ends in the death event, preceded by the routed traffic.
        assert telemetry["flight_dumps"] == len(tier.death_dumps) >= 1
        dump = tier.death_dumps[0]
        events = [entry["event"] for entry in dump]
        assert events[-1] == "death"
        assert "route" in events
        assert dump[-1]["shard"] == 0

    def test_rows_match_unsharded_even_across_a_restart(self):
        specs = [spec_of(tag=f"t{i % 2}") for i in range(16)]
        with SamplerService(rng=5, flush_deadline=0.01) as plain:
            reference = [plain.submit(s).row() for s in specs]
        with ShardedSamplerService(
            shards=2, rng=5, flush_deadline=0.5, batch_size=64
        ) as tier:
            futures = [tier.submit(s) for s in specs]
            os.kill(tier._shards[1].process.pid, signal.SIGKILL)
            rows = [f.row() for f in futures]
        for ours, ref in zip(rows, reference):
            assert ours["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
            assert ours["sequential_queries"] == ref["sequential_queries"]


class TestTelemetry:
    def test_fallback_counter_on_tiny_arena(self):
        # An arena too small for any result batch forces every batch onto
        # the pickle fallback — degraded, counted, but still correct.
        with ShardedSamplerService(
            shards=1, rng=3, flush_deadline=0.01, arena_bytes=256
        ) as tier:
            futures = [tier.submit(spec_of(universe=64, total=10)) for _ in range(4)]
            results = [f.result(timeout=30) for f in futures]
            telemetry = tier.telemetry()
        assert all(r.exact for r in results)
        assert telemetry["shm_fallback_batches"] >= 1
        assert telemetry["shm_batches"] == 0

    def test_per_shard_views_present(self):
        with ShardedSamplerService(shards=2, rng=0) as tier:
            tier.submit(spec_of()).result(timeout=30)
            telemetry = tier.telemetry()
        assert len(telemetry["per_shard"]) == 2
        assert telemetry["submitted"] == 1
