"""Goodness-of-fit statistics."""

import numpy as np
import pytest

from repro.analysis import (
    chi_square_test,
    expected_tv_fluctuation,
    sampling_consistent,
    tv_distance,
)
from repro.errors import ValidationError


class TestChiSquare:
    def test_consistent_sample_passes(self, rng):
        probs = np.array([0.5, 0.3, 0.2])
        outcomes = rng.choice(3, size=10000, p=probs)
        counts = np.bincount(outcomes, minlength=3)
        assert chi_square_test(counts, probs).consistent()

    def test_wrong_distribution_fails(self, rng):
        probs = np.array([0.5, 0.3, 0.2])
        outcomes = rng.choice(3, size=10000, p=np.array([0.2, 0.3, 0.5]))
        counts = np.bincount(outcomes, minlength=3)
        assert not chi_square_test(counts, probs).consistent()

    def test_impossible_outcome_rejected(self):
        probs = np.array([1.0, 0.0])
        with pytest.raises(ValidationError):
            chi_square_test(np.array([5, 1]), probs)

    def test_zero_cells_excluded(self, rng):
        probs = np.array([0.6, 0.0, 0.4])
        outcomes = rng.choice(3, size=5000, p=probs)
        counts = np.bincount(outcomes, minlength=3)
        result = chi_square_test(counts, probs)
        assert result.consistent()

    def test_small_cells_pooled(self, rng):
        # Heavy zipf spectrum with many tiny expectations.
        weights = 1 / np.arange(1, 30) ** 2
        probs = weights / weights.sum()
        outcomes = rng.choice(29, size=2000, p=probs)
        counts = np.bincount(outcomes, minlength=29)
        assert chi_square_test(counts, probs).consistent()

    def test_no_observations_rejected(self):
        with pytest.raises(ValidationError):
            chi_square_test(np.zeros(3), np.ones(3) / 3)


class TestTv:
    def test_identical(self):
        assert tv_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0

    def test_known_value(self):
        assert tv_distance(np.array([1.0, 0.0]), np.array([0.5, 0.5])) == pytest.approx(0.5)

    def test_fluctuation_ceiling_scales(self):
        assert expected_tv_fluctuation(16, 1600) == pytest.approx(0.2)
        assert expected_tv_fluctuation(16, 6400) == pytest.approx(0.1)


class TestSamplingConsistent:
    def test_verdict_true(self, rng):
        probs = np.array([0.25, 0.25, 0.5])
        outcomes = rng.choice(3, size=8000, p=probs)
        assert sampling_consistent(outcomes, probs)

    def test_verdict_false(self, rng):
        probs = np.array([0.25, 0.25, 0.5])
        outcomes = rng.choice(3, size=8000, p=probs[::-1])
        assert not sampling_consistent(outcomes, probs)
