"""The analyzer driver, registry and reporters.

File walking, the report schema CI archives, registry validation (the
same contract as ``repro.core.backends``), and the text/JSON renders.
"""

import json

import pytest

from repro.analysis.lint import (
    AnalysisReport,
    Finding,
    LintRule,
    analyze_paths,
    create_rules,
    iter_python_files,
    render,
    render_text,
    resolve_rule,
    rule_names,
)
from repro.analysis.lint.model import register_rule
from repro.errors import ValidationError

BAD_MODULE = 'raise ValueError("seeded violation")\n'


def write_tree(root, files):
    for name, content in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return root


class TestFileWalk:
    def test_walks_sorted_and_skips_caches(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/b.py": "x = 1\n",
            "pkg/a.py": "x = 1\n",
            "pkg/__pycache__/junk.py": "x = 1\n",
            "pkg/notes.txt": "not python\n",
        })
        names = [p.name for p in iter_python_files([tmp_path / "pkg"])]
        assert names == ["a.py", "b.py"]

    def test_single_file_and_dedup(self, tmp_path):
        write_tree(tmp_path, {"one.py": "x = 1\n"})
        target = tmp_path / "one.py"
        assert list(iter_python_files([target, target, tmp_path])) == [target]

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            list(iter_python_files([tmp_path / "absent"]))


class TestAnalyzePaths:
    def test_findings_and_counts(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/dirty.py": BAD_MODULE,
            "src/repro/clean.py": "x = 1\n",
        })
        report = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert report.files_checked == 2
        assert report.total == 1
        assert report.counts() == {"REP008": 1}
        assert report.findings[0].path == "src/repro/dirty.py"

    def test_syntax_error_recorded_not_fatal(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/broken.py": "def nope(:\n",
            "src/repro/clean.py": "x = 1\n",
        })
        report = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert report.files_checked == 1
        assert report.parse_errors == ["src/repro/broken.py"]

    def test_rule_selection(self, tmp_path):
        write_tree(tmp_path, {"src/repro/dirty.py": BAD_MODULE})
        report = analyze_paths(
            [tmp_path / "src"], rule_ids=("REP001",), root=tmp_path
        )
        assert report.total == 0

    def test_json_schema_stable(self, tmp_path):
        write_tree(tmp_path, {"src/repro/dirty.py": BAD_MODULE})
        payload = json.loads(
            analyze_paths([tmp_path / "src"], root=tmp_path).to_json()
        )
        assert payload["version"] == 1
        assert set(payload) == {
            "version", "files_checked", "total", "counts", "findings",
            "parse_errors",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "message"}


class TestRegistry:
    def test_all_eight_rules_plus_meta_registered(self):
        ids = rule_names()
        for expected in [f"REP00{i}" for i in range(1, 9)]:
            assert expected in ids
        for meta in ("REP900", "REP901", "REP902"):
            assert meta in ids

    def test_resolve_unknown_lists_choices(self):
        with pytest.raises(ValidationError, match="REP001"):
            resolve_rule("REP555")

    def test_default_selection_excludes_meta(self):
        ids = {rule.rule_id for rule in create_rules()}
        assert "REP900" not in ids
        assert "REP001" in ids

    def test_meta_rules_not_selectable(self):
        with pytest.raises(ValidationError, match="meta-rule"):
            create_rules(("REP900",))

    def test_bad_rule_id_rejected(self):
        with pytest.raises(ValidationError, match="REPnnn"):
            @register_rule
            class Bad(LintRule):
                rule_id = "NOPE1"
                name = "bad"
                description = "bad"

                def check(self, module):
                    return iter(())

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            @register_rule
            class Clash(LintRule):
                rule_id = "REP001"
                name = "clash"
                description = "clash"

                def check(self, module):
                    return iter(())


class TestReporters:
    def sample_report(self):
        report = AnalysisReport(files_checked=3)
        report.findings = [
            Finding(path="src/repro/a.py", line=4, col=2,
                    rule_id="REP008", message="bare ValueError raised"),
        ]
        return report

    def test_text_lists_location_and_summary(self):
        text = render_text(self.sample_report())
        assert "src/repro/a.py:4:2: REP008" in text
        assert "1 finding(s) in 3 file(s)" in text

    def test_text_clean_summary(self):
        assert "clean: 0 findings" in render_text(AnalysisReport(files_checked=5))

    def test_json_round_trips(self):
        payload = json.loads(render(self.sample_report(), "json"))
        assert payload["counts"] == {"REP008": 1}

    def test_unknown_format_rejected(self):
        with pytest.raises(ValidationError, match="format"):
            render(self.sample_report(), "xml")
