"""Run certification and failure injection.

The certificate must validate honest runs and trip on tampered ones —
this file injects each failure mode the checks were designed to catch.
"""

import numpy as np
import pytest

from repro.analysis import certify_run
from repro.core import SequentialSampler, sample_sequential
from repro.database import DistributedDatabase, Machine, Multiset


class TestHonestRuns:
    def test_sequential_run_certifies(self, small_db):
        result = sample_sequential(small_db)
        certificate = certify_run(result, small_db, rng=0)
        assert certificate.valid, certificate.render()

    def test_parallel_run_certifies(self, small_db):
        from repro.core import sample_parallel

        result = sample_parallel(small_db)
        certificate = certify_run(result, small_db, rng=0)
        assert certificate.valid, certificate.render()

    def test_render_mentions_all_checks(self, small_db):
        result = sample_sequential(small_db)
        rendered = certify_run(result, small_db, rng=0).render()
        for name in (
            "state fidelity",
            "workspace cleared",
            "query accounting",
            "output distribution",
            "measured spectrum",
        ):
            assert name in rendered


class TestFailureInjection:
    def test_byzantine_machine_detected(self):
        """A machine lying about one multiplicity breaks exactness — the
        certificate must notice."""
        honest = DistributedDatabase.from_shards(
            [Multiset(8, {0: 2, 1: 1}), Multiset(8, {4: 1})], nu=4
        )
        # Run the sampler against a *tampered* database but certify
        # against the honest one (= what the data owner believes is true).
        tampered = honest.replaced_machine(
            1, Machine(Multiset(8, {4: 3}), capacity=4)
        )
        result = sample_sequential(tampered, backend="subspace")
        certificate = certify_run(result, honest, rng=0)
        assert not certificate.valid
        failed = {c.name for c in certificate.failures()}
        assert "output distribution" in failed

    def test_wrong_plan_detected(self, sparse_db):
        """Planning with the wrong overlap (e.g. a stale M) leaves the
        rotation short of the target."""
        from repro.core.estimation import sample_with_estimated_m

        # Force a coarse estimate so the plan is off.
        _, result = sample_with_estimated_m(sparse_db, precision_bits=3, shots=1, rng=5)
        certificate = certify_run(result, sparse_db, rng=0)
        if result.fidelity < 0.999:
            assert not certificate.valid
            assert any(c.name == "state fidelity" for c in certificate.failures())

    def test_dirty_workspace_detected(self, small_db):
        """Manually corrupting the final state's workspace trips check 2."""
        result = sample_sequential(small_db)
        arr = result.final_state.as_array()
        # Move some amplitude into s = 1 (unitary-ish corruption: swap slices).
        arr[:, [0, 1], :] = arr[:, [1, 0], :]
        certificate = certify_run(result, small_db, shots=500, rng=0)
        assert not certificate.valid
        failed = {c.name for c in certificate.failures()}
        assert "workspace cleared" in failed

    def test_ledger_schedule_mismatch_detected(self, small_db):
        """A result whose schedule disagrees with its ledger is flagged."""
        sampler = SequentialSampler(small_db)
        result = sampler.run()
        import dataclasses

        from repro.core import QuerySchedule

        wrong_schedule = QuerySchedule.sequential_from_plan(
            small_db.n_machines, result.plan.d_applications + 1
        )
        forged = dataclasses.replace(result, schedule=wrong_schedule)
        certificate = certify_run(forged, small_db, rng=0)
        assert not certificate.valid
        assert any(c.name == "query accounting" for c in certificate.failures())

    def test_wrong_database_claim_detected(self, small_db, tiny_db):
        """Certifying a run against a different database must fail."""
        result = sample_sequential(small_db)
        other = DistributedDatabase.from_shards(
            [Multiset(8, {6: 3}), Multiset(8, {7: 2})], nu=6
        )
        certificate = certify_run(result, other, rng=0)
        assert not certificate.valid
