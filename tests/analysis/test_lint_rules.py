"""Fixture self-tests for the invariant analyzer's rules.

One bad/good snippet pair per rule: the bad form must fire, the
corrected form must stay silent.  Snippets are built as in-memory
:class:`ModuleContext` objects with repo-shaped paths, so path-scoped
rules (REP002/REP003/REP008) see the layout they key on.
"""

import ast
import textwrap

from repro.analysis.lint import ModuleContext, resolve_rule


def run_rule(rule_id: str, source: str, path: str = "src/repro/qsim/kernel.py"):
    source = textwrap.dedent(source)
    module = ModuleContext(path=path, source=source, tree=ast.parse(source))
    return list(resolve_rule(rule_id)().check(module))


class TestREP001UnseededRng:
    BAD = """
        import numpy as np

        def draw():
            return np.random.default_rng(0).integers(10)
    """
    GOOD = """
        from repro.utils.rng import as_generator

        def draw():
            return as_generator(0).integers(10)
    """

    def test_fires_on_bare_default_rng(self):
        findings = self.run(self.BAD)
        assert len(findings) == 1
        assert "np.random.default_rng" in findings[0].message

    def test_silent_on_as_generator(self):
        assert self.run(self.GOOD) == []

    def test_fires_on_stdlib_random(self):
        findings = self.run("""
            import random

            def draw():
                return random.random()
        """)
        assert len(findings) == 1

    def test_fires_on_from_import(self):
        findings = self.run("""
            from random import choice
        """)
        assert len(findings) == 1

    def test_numpy_alias_tracked(self):
        findings = self.run("""
            import numpy as xp

            def draw():
                return xp.random.normal()
        """)
        assert len(findings) == 1

    def test_rng_module_itself_exempt(self):
        findings = run_rule("REP001", textwrap.dedent("""
            import numpy as np

            def as_generator(rng):
                return np.random.default_rng(rng)
        """), path="src/repro/utils/rng.py")
        assert findings == []

    def run(self, source):
        return run_rule("REP001", source)


class TestREP002WallClockInKernels:
    BAD = """
        import time

        def kernel():
            start = time.time()
            work()
            return time.time() - start
    """
    GOOD = """
        import time

        def kernel():
            start = time.perf_counter()
            work()
            return time.perf_counter() - start
    """

    def test_fires_in_hot_path(self):
        findings = run_rule("REP002", self.BAD, path="src/repro/qsim/state.py")
        assert len(findings) == 2
        assert "monotonic" in findings[0].message

    def test_silent_on_monotonic(self):
        assert run_rule("REP002", self.GOOD, path="src/repro/qsim/state.py") == []

    def test_fires_in_benchmarks(self):
        findings = run_rule("REP002", self.BAD, path="benchmarks/bench_e99.py")
        assert len(findings) == 2

    def test_out_of_scope_module_exempt(self):
        # obs/ owns wall-clock ts fields (span ordering) by design.
        assert run_rule("REP002", self.BAD, path="src/repro/obs/trace.py") == []

    def test_fires_on_from_import(self):
        findings = run_rule("REP002", """
            from time import time
        """, path="src/repro/batch/engine.py")
        assert len(findings) == 1

    def test_fires_on_datetime_now(self):
        findings = run_rule("REP002", """
            import datetime

            def stamp():
                return datetime.datetime.now()
        """, path="src/repro/core/sampler.py")
        assert len(findings) == 1


class TestREP003ForkUnsafeGlobalMutation:
    BAD = """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
    """
    GOOD = """
        import os

        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value

        def _reset():
            _CACHE.clear()

        os.register_at_fork(after_in_child=_reset)
    """

    def test_fires_on_unhooked_mutation(self):
        findings = run_rule("REP003", self.BAD, path="src/repro/foo.py")
        assert len(findings) == 1
        assert "register_at_fork" in findings[0].message

    def test_silent_with_at_fork_hook(self):
        assert run_rule("REP003", self.GOOD, path="src/repro/foo.py") == []

    def test_fires_on_global_rebind(self):
        findings = run_rule("REP003", """
            _ACTIVE = None

            def activate(value):
                global _ACTIVE
                _ACTIVE = value
        """, path="src/repro/foo.py")
        assert len(findings) == 1
        assert "rebound" in findings[0].message

    def test_fires_on_mutating_method(self):
        findings = run_rule("REP003", """
            _EVENTS = []

            def record(event):
                _EVENTS.append(event)
        """, path="src/repro/foo.py")
        assert len(findings) == 1

    def test_local_shadow_not_flagged(self):
        findings = run_rule("REP003", """
            _CACHE = {}

            def build():
                _CACHE = {}
                _CACHE["fresh"] = True
                return _CACHE
        """, path="src/repro/foo.py")
        assert findings == []

    def test_out_of_tree_module_exempt(self):
        assert run_rule("REP003", self.BAD, path="tests/test_foo.py") == []


class TestREP004UnpicklablePipePayload:
    BAD = """
        def fan_out(pool, items):
            def helper(item):
                return item + 1
            return [pool.submit(helper, item) for item in items]
    """
    GOOD = """
        def helper(item):
            return item + 1

        def fan_out(pool, items):
            return [pool.submit(helper, item) for item in items]
    """

    def test_fires_on_nested_function(self):
        findings = run_rule("REP004", self.BAD)
        assert len(findings) == 1
        assert "helper" in findings[0].message

    def test_silent_on_module_level_function(self):
        assert run_rule("REP004", self.GOOD) == []

    def test_fires_on_lambda(self):
        findings = run_rule("REP004", """
            from repro.utils.pool import process_map

            def run(items):
                return process_map(lambda x: x * 2, items)
        """)
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_thread_pool_exempt(self):
        # Threads share memory; submit() never pickles.
        findings = run_rule("REP004", """
            from concurrent.futures import ThreadPoolExecutor

            def run(items):
                def helper(item):
                    return item
                with ThreadPoolExecutor() as pool:
                    return [pool.submit(helper, item) for item in items]
        """)
        assert findings == []


class TestREP005EscapingShmView:
    BAD = """
        def fetch(client, handle):
            arrays = client.read_arrays(handle)
            return arrays
    """
    GOOD = """
        def fetch(client, handle):
            arrays = client.read_arrays(handle)
            return [array.copy() for array in arrays]
    """

    def test_fires_on_returned_views(self):
        findings = run_rule("REP005", self.BAD)
        assert len(findings) == 1
        assert "copy" in findings[0].message

    def test_silent_on_copies(self):
        assert run_rule("REP005", self.GOOD) == []

    def test_fires_on_direct_return(self):
        findings = run_rule("REP005", """
            def fetch(client, handle):
                return client.read_arrays(handle)
        """)
        assert len(findings) == 1

    def test_fires_on_indexed_view(self):
        findings = run_rule("REP005", """
            def first(client, handle):
                views = client.read_arrays(handle)
                return views[0]
        """)
        assert len(findings) == 1


class TestREP006RegistryConformance:
    BAD = """
        import abc

        class Base(abc.ABC):
            name = ""

            @abc.abstractmethod
            def initial_state(self):
                ...

        @register_backend
        class Broken(Base):
            name = "broken"
    """
    GOOD = """
        import abc

        class Base(abc.ABC):
            name = ""

            @abc.abstractmethod
            def initial_state(self):
                ...

        @register_backend
        class Works(Base):
            name = "works"

            def initial_state(self):
                return None
    """

    def test_fires_on_missing_abstract_method(self):
        findings = run_rule("REP006", self.BAD)
        assert len(findings) == 1
        assert "initial_state" in findings[0].message

    def test_silent_on_full_implementation(self):
        assert run_rule("REP006", self.GOOD) == []

    def test_fires_on_missing_name(self):
        findings = run_rule("REP006", """
            @register_backend
            class NoName:
                def initial_state(self):
                    return None
        """)
        assert len(findings) == 1
        assert "name" in findings[0].message

    def test_unresolvable_base_skipped(self):
        # The protocol lives in another module; nothing provable here.
        findings = run_rule("REP006", """
            from elsewhere import Base

            @register_backend
            class Remote(Base):
                name = "remote"
        """)
        assert findings == []

    def test_scenario_missing_description(self):
        findings = run_rule("REP006", """
            register_scenario(Scenario(name="skewed"))
        """)
        assert len(findings) == 1
        assert "description" in findings[0].message

    def test_scenario_complete(self):
        findings = run_rule("REP006", """
            register_scenario(Scenario(name="skewed", description="zipf 2.0"))
        """)
        assert findings == []


class TestREP007SpanDiscipline:
    BAD = """
        def plan(request):
            span("plan", backend="dense")
            return compute(request)
    """
    GOOD = """
        def plan(request):
            with span("plan", backend="dense"):
                return compute(request)
    """

    def test_fires_on_discarded_span(self):
        findings = run_rule("REP007", self.BAD)
        assert len(findings) == 1
        assert "with" in findings[0].message

    def test_silent_inside_with(self):
        assert run_rule("REP007", self.GOOD) == []

    def test_fires_on_dropped_tracer_start(self):
        findings = run_rule("REP007", """
            def plan(tracer, request):
                tracer.start("plan")
                return compute(request)
        """)
        assert len(findings) == 1

    def test_assigned_start_is_fine(self):
        findings = run_rule("REP007", """
            def plan(tracer, request):
                opened = tracer.start("plan")
                try:
                    return compute(request)
                finally:
                    tracer.finish(opened)
        """)
        assert findings == []


class TestREP008BareRaiseOfBuiltin:
    BAD = """
        def check(value):
            if value < 0:
                raise ValueError("negative")
    """
    GOOD = """
        from repro.errors import ValidationError

        def check(value):
            if value < 0:
                raise ValidationError("negative")
    """

    def test_fires_on_bare_builtin(self):
        findings = run_rule("REP008", self.BAD, path="src/repro/core/plan.py")
        assert len(findings) == 1
        assert "ReproError" in findings[0].message

    def test_silent_on_repro_error(self):
        assert run_rule("REP008", self.GOOD, path="src/repro/core/plan.py") == []

    def test_tests_tree_exempt(self):
        assert run_rule("REP008", self.BAD, path="tests/test_plan.py") == []

    def test_reraise_is_fine(self):
        findings = run_rule("REP008", """
            def forward():
                try:
                    work()
                except Exception:
                    raise
        """, path="src/repro/core/plan.py")
        assert findings == []
