"""Report rendering and artifact archives."""

import os

import numpy as np
import pytest

from repro.analysis import archive_results, experiment_table, load_results
from repro.utils import Table, format_float, format_ratio


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["a", "bbbb"])
        table.add_row([1, 2])
        table.add_row([333, 4])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bbbb" in lines[1]
        # title + header + rule + two rows
        assert len(lines) == 5

    def test_row_width_checked(self):
        table = Table("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_float_formatting(self):
        assert format_float(0.123456) == "0.1235"
        assert format_float(1.5e-9) == "1.5000e-09"
        assert format_float(0) == "0"

    def test_ratio_formatting(self):
        assert format_ratio(3, 2) == "1.500"
        assert format_ratio(1, 0) == "inf"
        assert format_ratio(0, 0) == "1.000"


class TestExperimentTable:
    def test_contains_claim_and_rows(self):
        rendered = experiment_table(
            "E1", "Thm 4.3 scaling", ["N", "queries"], [[16, 42], [64, 84]]
        )
        assert "[E1]" in rendered
        assert "Thm 4.3" in rendered
        assert "42" in rendered


class TestArchive:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        payload = {
            "rows": [1, 2, 3],
            "np_int": np.int64(5),
            "np_arr": np.arange(3),
        }
        path = archive_results("E99", payload)
        assert os.path.exists(path)
        loaded = load_results("E99")
        assert loaded["rows"] == [1, 2, 3]
        assert loaded["np_int"] == 5
        assert loaded["np_arr"] == [0, 1, 2]
