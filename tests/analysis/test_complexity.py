"""Scaling analysis: fits, envelopes, crossovers."""

import numpy as np
import pytest

from repro.analysis import (
    compare_envelope,
    find_crossover,
    fit_power_law,
    slope_matches,
)
from repro.errors import ValidationError


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        x = np.array([1, 2, 4, 8, 16], dtype=float)
        y = 3.0 * x**0.5
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(0.5)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        np.testing.assert_allclose(fit.predict(np.array([8.0])), [16.0])

    def test_noise_tolerance(self, rng):
        x = np.geomspace(1, 1000, 20)
        y = 5 * x**1.5 * np.exp(rng.normal(0, 0.05, size=20))
        fit = fit_power_law(x, y)
        assert slope_matches(fit, 1.5, tolerance=0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            fit_power_law([1, 2], [0, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValidationError):
            fit_power_law([1], [1])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValidationError):
            fit_power_law([2, 2], [1, 3])


class TestEnvelope:
    def test_exact_envelope(self):
        comparison = compare_envelope([2, 4, 8], [2, 4, 8])
        assert comparison.spread == pytest.approx(1.0)
        assert comparison.within_constant(1.01)

    def test_constant_factor(self):
        comparison = compare_envelope([4, 8, 16], [2, 4, 8])
        assert comparison.max_ratio == pytest.approx(2.0)
        assert comparison.within_constant(4.0)

    def test_detects_wrong_shape(self):
        measured = [2, 8, 32]        # quadratic
        predicted = [2, 4, 8]        # linear
        comparison = compare_envelope(measured, predicted)
        assert not comparison.within_constant(3.0)

    def test_predicted_must_be_positive(self):
        with pytest.raises(ValidationError):
            compare_envelope([1], [0])


class TestCrossover:
    def test_linear_vs_sqrt(self):
        crossing = find_crossover(
            lambda x: x, lambda x: 10 * np.sqrt(x), lo=1, hi=1e4
        )
        assert crossing == pytest.approx(100.0, rel=1e-3)

    def test_no_crossover_returns_none(self):
        assert find_crossover(lambda x: x + 1, lambda x: x, lo=1, hi=100) is None

    def test_interval_validation(self):
        with pytest.raises(ValidationError):
            find_crossover(lambda x: x, lambda x: x, lo=5, hi=2)
