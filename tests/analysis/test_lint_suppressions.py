"""The ``# repro: allow(rule-id) -- reason`` suppression protocol.

Covers the three distinct meta-findings: REP900 (malformed — no
reason), REP901 (unknown or meta rule id), REP902 (stale — the named
rule no longer fires on that line).  All allow() comments here live in
fixture *strings*; the analyzer tokenizes each fixture independently,
so nothing in this file is a live suppression.
"""

import ast
import textwrap

from repro.analysis.lint import (
    ModuleContext,
    analyze_module,
    create_rules,
    parse_suppressions,
)

#: A one-line REP008 violation (src/repro scope) to hang comments off.
VIOLATION = 'raise ValueError("bad")'


def analyze(source: str, path: str = "src/repro/fixture.py"):
    source = textwrap.dedent(source)
    module = ModuleContext(path=path, source=source, tree=ast.parse(source))
    return analyze_module(module, create_rules())


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestWellFormedSuppression:
    def test_silences_the_named_finding(self):
        findings = analyze(
            f"{VIOLATION}  # repro: allow(REP008) -- fixture exercises the bare form"
        )
        assert findings == []

    def test_reason_survives_parsing(self):
        module = ModuleContext(
            path="src/repro/fixture.py",
            source=f"{VIOLATION}  # repro: allow(REP008) -- because physics\n",
            tree=ast.parse(VIOLATION),
        )
        (sup,) = parse_suppressions(module)
        assert sup.rule_ids == ("REP008",)
        assert sup.reason == "because physics"

    def test_multiple_ids_share_one_comment(self):
        findings = analyze("""
            import numpy as np

            def f():
                rng = np.random.default_rng(0)  # repro: allow(REP001, REP008) -- REP001 is real here, REP008 goes stale
                raise ValueError("x")
        """)
        # REP001 suppressed; REP008 on line 4 never fired there → stale;
        # the line-5 ValueError still reports.
        assert sorted(rule_ids(findings)) == ["REP008", "REP902"]

    def test_only_its_own_line(self):
        findings = analyze(f"""
            # repro: allow(REP008) -- wrong line entirely
            {VIOLATION}
        """)
        # The violation survives AND the suppression is stale.
        assert sorted(rule_ids(findings)) == ["REP008", "REP902"]

    def test_string_literal_is_not_a_suppression(self):
        findings = analyze(f"""
            DOC = "silence with  # repro: allow(REP008) -- like this"
            {VIOLATION}
        """)
        assert rule_ids(findings) == ["REP008"]


class TestMalformedSuppression:
    def test_missing_reason_is_rep900(self):
        findings = analyze(f"{VIOLATION}  # repro: allow(REP008)")
        # It suppresses nothing: the violation reports alongside REP900.
        assert sorted(rule_ids(findings)) == ["REP008", "REP900"]

    def test_empty_rule_list_is_rep900(self):
        findings = analyze(f"{VIOLATION}  # repro: allow() -- no ids named")
        assert sorted(rule_ids(findings)) == ["REP008", "REP900"]

    def test_message_names_the_grammar(self):
        findings = analyze(f"{VIOLATION}  # repro: allow(REP008)")
        (rep900,) = [f for f in findings if f.rule_id == "REP900"]
        assert "-- <reason>" in rep900.message


class TestUnknownRuleSuppression:
    def test_unknown_id_is_rep901(self):
        findings = analyze(
            f"{VIOLATION}  # repro: allow(REP999) -- typo for REP008"
        )
        assert sorted(rule_ids(findings)) == ["REP008", "REP901"]

    def test_meta_rule_cannot_be_suppressed(self):
        findings = analyze(
            f"{VIOLATION}  # repro: allow(REP902) -- nice try"
        )
        (rep901,) = [f for f in findings if f.rule_id == "REP901"]
        assert "cannot be suppressed" in rep901.message

    def test_valid_ids_in_same_comment_still_apply(self):
        findings = analyze(
            f"{VIOLATION}  # repro: allow(REP999, REP008) -- one typo, one real"
        )
        # REP008 is suppressed; only the unknown-id meta-finding remains.
        assert rule_ids(findings) == ["REP901"]


class TestStaleSuppression:
    def test_clean_line_is_rep902(self):
        findings = analyze(
            "x = 1  # repro: allow(REP008) -- nothing wrong here anymore"
        )
        assert rule_ids(findings) == ["REP902"]

    def test_message_names_the_stale_rule(self):
        findings = analyze(
            "x = 1  # repro: allow(REP001) -- fixed long ago"
        )
        assert "REP001" in findings[0].message

    def test_fresh_suppression_is_not_stale(self):
        findings = analyze(
            f"{VIOLATION}  # repro: allow(REP008) -- live violation"
        )
        assert findings == []

    def test_distinct_ids_from_malformed_and_unknown(self):
        # The three defects produce three distinct rule ids.
        stale = analyze("x = 1  # repro: allow(REP008) -- gone")
        malformed = analyze(f"{VIOLATION}  # repro: allow(REP008)")
        unknown = analyze(f"{VIOLATION}  # repro: allow(REP777) -- what")
        assert rule_ids(stale) == ["REP902"]
        assert "REP900" in rule_ids(malformed)
        assert "REP901" in rule_ids(unknown)
