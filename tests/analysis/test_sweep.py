"""Sweep driver."""

import pytest

from repro.analysis import InstanceSpec, grid, run_sweep
from repro.database import WorkloadSpec


@pytest.fixture
def spec():
    return InstanceSpec(
        workload=WorkloadSpec.of("uniform", universe=8, total=12),
        n_machines=2,
        strategy="round_robin",
    )


class TestInstanceSpec:
    def test_build_produces_database(self, spec):
        db = spec.build(rng=0)
        assert db.universe == 8
        assert db.total_count == 12
        assert db.n_machines == 2

    def test_label_mentions_pieces(self, spec):
        label = spec.label()
        assert "uniform" in label
        assert "round_robin" in label
        assert "n=2" in label

    def test_explicit_nu(self):
        spec = InstanceSpec(
            workload=WorkloadSpec.of("block", universe=8, block_size=2),
            n_machines=1,
            nu=5,
        )
        assert spec.build(rng=0).nu == 5

    def test_tag_in_label(self):
        spec = InstanceSpec(
            workload=WorkloadSpec.of("block", universe=8, block_size=2),
            n_machines=1,
            tag="ablation",
        )
        assert "ablation" in spec.label()


class TestRunSweep:
    def test_rows_have_injected_columns(self, spec):
        result = run_sweep([spec], lambda db, s: {"metric": db.total_count}, rng=0)
        row = result.rows[0]
        assert row["N"] == 8
        assert row["M"] == 12
        assert row["n"] == 2
        assert row["metric"] == 12

    def test_column_extraction(self, spec):
        result = run_sweep([spec, spec], lambda db, s: {"metric": 1}, rng=0)
        assert result.column("metric") == [1, 1]
        assert len(result) == 2

    def test_filter(self, spec):
        other = InstanceSpec(
            workload=WorkloadSpec.of("uniform", universe=8, total=12),
            n_machines=4,
        )
        result = run_sweep([spec, other], lambda db, s: {}, rng=0)
        assert len(result.filter(n=4)) == 1

    def test_deterministic_given_rng(self, spec):
        measure = lambda db, s: {"counts": db.count_matrix.tolist()}
        a = run_sweep([spec], measure, rng=11)
        b = run_sweep([spec], measure, rng=11)
        assert a.rows == b.rows


class TestGrid:
    def test_cartesian_product(self):
        specs = grid(
            workloads=[
                WorkloadSpec.of("uniform", universe=8, total=12),
                WorkloadSpec.of("zipf", universe=8, total=12),
            ],
            machine_counts=[1, 2, 4],
            strategies=("round_robin", "random"),
        )
        assert len(specs) == 2 * 3 * 2


def _count_measure(db, spec):
    """Module-level measure so worker processes can unpickle it."""
    return {"metric": db.total_count, "counts": db.count_matrix.tolist()}


def _strict_toggling_measure(db, spec):
    """Flips the ContextVar-backed flag inside the worker and reports it."""
    from repro.config import CONFIG

    CONFIG.strict_checks = True
    return {"worker_saw_strict": CONFIG.strict_checks}


class TestProcessParallelSweep:
    def test_jobs_rows_match_for_any_worker_count(self, spec):
        specs = [spec] * 4
        two = run_sweep(specs, _count_measure, rng=11, jobs=2)
        three = run_sweep(specs, _count_measure, rng=11, jobs=3)
        assert two.rows == three.rows
        assert len(two) == 4

    def test_jobs_preserve_spec_order(self, spec):
        other = InstanceSpec(
            workload=WorkloadSpec.of("uniform", universe=8, total=12),
            n_machines=4,
        )
        result = run_sweep([spec, other, spec], _count_measure, rng=0, jobs=2)
        assert result.column("n") == [2, 4, 2]

    def test_jobs_one_is_the_legacy_sequential_path(self, spec):
        # jobs=None and jobs=1 share the generator-threading code path,
        # so they stay bit-for-bit identical to previous releases.
        a = run_sweep([spec, spec], _count_measure, rng=11)
        b = run_sweep([spec, spec], _count_measure, rng=11, jobs=1)
        assert a.rows == b.rows

    def test_strict_checks_isolated_per_worker(self, spec):
        from repro.config import CONFIG

        assert CONFIG.strict_checks is False
        result = run_sweep([spec] * 3, _strict_toggling_measure, rng=0, jobs=2)
        # Every worker saw its own toggle...
        assert result.column("worker_saw_strict") == [True, True, True]
        # ...and none of them leaked into the parent process/context.
        assert CONFIG.strict_checks is False
