"""Sweep driver."""

import pytest

from repro.analysis import InstanceSpec, grid, run_sweep
from repro.database import WorkloadSpec


@pytest.fixture
def spec():
    return InstanceSpec(
        workload=WorkloadSpec.of("uniform", universe=8, total=12),
        n_machines=2,
        strategy="round_robin",
    )


class TestInstanceSpec:
    def test_build_produces_database(self, spec):
        db = spec.build(rng=0)
        assert db.universe == 8
        assert db.total_count == 12
        assert db.n_machines == 2

    def test_label_mentions_pieces(self, spec):
        label = spec.label()
        assert "uniform" in label
        assert "round_robin" in label
        assert "n=2" in label

    def test_explicit_nu(self):
        spec = InstanceSpec(
            workload=WorkloadSpec.of("block", universe=8, block_size=2),
            n_machines=1,
            nu=5,
        )
        assert spec.build(rng=0).nu == 5

    def test_tag_in_label(self):
        spec = InstanceSpec(
            workload=WorkloadSpec.of("block", universe=8, block_size=2),
            n_machines=1,
            tag="ablation",
        )
        assert "ablation" in spec.label()


class TestRunSweep:
    def test_rows_have_injected_columns(self, spec):
        result = run_sweep([spec], lambda db, s: {"metric": db.total_count}, rng=0)
        row = result.rows[0]
        assert row["N"] == 8
        assert row["M"] == 12
        assert row["n"] == 2
        assert row["metric"] == 12

    def test_column_extraction(self, spec):
        result = run_sweep([spec, spec], lambda db, s: {"metric": 1}, rng=0)
        assert result.column("metric") == [1, 1]
        assert len(result) == 2

    def test_filter(self, spec):
        other = InstanceSpec(
            workload=WorkloadSpec.of("uniform", universe=8, total=12),
            n_machines=4,
        )
        result = run_sweep([spec, other], lambda db, s: {}, rng=0)
        assert len(result.filter(n=4)) == 1

    def test_deterministic_given_rng(self, spec):
        measure = lambda db, s: {"counts": db.count_matrix.tolist()}
        a = run_sweep([spec], measure, rng=11)
        b = run_sweep([spec], measure, rng=11)
        assert a.rows == b.rows


class TestGrid:
    def test_cartesian_product(self):
        specs = grid(
            workloads=[
                WorkloadSpec.of("uniform", universe=8, total=12),
                WorkloadSpec.of("zipf", universe=8, total=12),
            ],
            machine_counts=[1, 2, 4],
            strategies=("round_robin", "random"),
        )
        assert len(specs) == 2 * 3 * 2
