"""Utility modules: rng, validation, tables, timing, config, errors."""

import time

import numpy as np
import pytest

from repro.config import CONFIG, strict_mode
from repro.errors import (
    CapacityError,
    EmptyDatabaseError,
    ObliviousnessError,
    PlanInfeasibleError,
    ReproError,
    SimulationLimitError,
    ValidationError,
)
from repro.utils import (
    Stopwatch,
    Table,
    as_generator,
    child_generators,
    require,
    require_in_range,
    require_index,
    require_nonneg_int,
    require_pos_int,
    require_prob,
    spawn_seed,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_generator(5).integers(0, 100, 10)
        b = as_generator(5).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)  # repro: allow(REP001) -- exercises the raw-Generator input as_generator must pass through
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(42))  # repro: allow(REP001) -- exercises the raw-SeedSequence input as_generator must coerce
        assert isinstance(gen, np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(ValidationError):
            as_generator("not-a-seed")

    def test_spawn_seed_range(self):
        seed = spawn_seed(1)
        assert 0 <= seed < 2**63

    def test_child_generators_independent(self):
        children = child_generators(0, 3)
        draws = [g.integers(0, 1000) for g in children]
        assert len(children) == 3
        # Extremely unlikely all equal if independent.
        assert len(set(int(d) for d in draws)) > 1


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="nope"):
            require(False, "nope")

    def test_pos_int(self):
        assert require_pos_int(3, "x") == 3
        assert require_pos_int(np.int64(3), "x") == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ValidationError):
                require_pos_int(bad, "x")

    def test_nonneg_int(self):
        assert require_nonneg_int(0, "x") == 0
        with pytest.raises(ValidationError):
            require_nonneg_int(-1, "x")

    def test_index(self):
        assert require_index(2, 3, "x") == 2
        with pytest.raises(ValidationError):
            require_index(3, 3, "x")

    def test_prob(self):
        assert require_prob(0.5, "p") == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValidationError):
                require_prob(bad, "p")

    def test_in_range(self):
        assert require_in_range(1.0, 0.0, 2.0, "x") == 1.0
        with pytest.raises(ValidationError):
            require_in_range(3.0, 0.0, 2.0, "x")


class TestStopwatch:
    def test_laps_accumulate(self):
        sw = Stopwatch()
        with sw.lap("a"):
            time.sleep(0.001)
        with sw.lap("a"):
            time.sleep(0.001)
        assert sw.laps["a"] >= 0.002
        assert sw.total() == pytest.approx(sum(sw.laps.values()))

    def test_report_mentions_laps(self):
        sw = Stopwatch()
        with sw.lap("build"):
            pass
        assert "build" in sw.report()
        assert "total" in sw.report()


class TestConfig:
    def test_strict_mode_scoped(self):
        assert not CONFIG.strict_checks
        with strict_mode():
            assert CONFIG.strict_checks
        assert not CONFIG.strict_checks

    def test_strict_mode_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with strict_mode():
                raise RuntimeError("boom")
        assert not CONFIG.strict_checks

    def test_dense_dimension_guard(self):
        with pytest.raises(SimulationLimitError) as excinfo:
            CONFIG.require_dense_dimension(CONFIG.max_dense_dimension + 1)
        assert excinfo.value.dimension == CONFIG.max_dense_dimension + 1


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError,
            CapacityError,
            EmptyDatabaseError,
            ObliviousnessError,
            PlanInfeasibleError,
            SimulationLimitError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_capacity_is_validation(self):
        assert issubclass(CapacityError, ValidationError)
        assert issubclass(ValidationError, ValueError)


class TestTable:
    def test_mixed_types(self):
        table = Table("t", ["a", "b"])
        table.add_row([1, 0.123456789])
        rendered = table.render()
        assert "0.1235" in rendered


def _square(x):
    """Module-level so process_map_iter can pickle it to workers."""
    return x * x


class TestProcessMapIter:
    def test_in_process_streams_lazily(self):
        from repro.utils.pool import process_map_iter

        pulled = []

        def source():
            for k in range(6):
                pulled.append(k)
                yield k

        stream = process_map_iter(_square, source())
        assert pulled == []  # nothing consumed before iteration starts
        assert next(stream) == 0
        assert len(pulled) == 1  # one payload per yielded result
        assert list(stream) == [1, 4, 9, 16, 25]

    def test_results_in_submission_order(self):
        from repro.utils.pool import process_map_iter

        assert list(process_map_iter(_square, range(20), jobs=2)) == [
            k * k for k in range(20)
        ]

    def test_window_bounds_consumption(self):
        from repro.utils.pool import process_map_iter

        pulled = []

        def source():
            for k in range(10):
                pulled.append(k)
                yield k

        stream = process_map_iter(_square, source(), jobs=2, window=3)
        first = next(stream)
        assert first == 0
        # payload k+window is not drawn until result k is yielded:
        # at most window + 1 payloads consumed after one yield.
        assert len(pulled) <= 4
        assert list(stream) == [k * k for k in range(1, 10)]

    def test_bad_window_rejected(self):
        import pytest

        from repro.utils.pool import process_map_iter

        with pytest.raises(ValueError):
            list(process_map_iter(_square, range(3), jobs=2, window=0))

    def test_matches_process_map(self):
        from repro.utils.pool import process_map, process_map_iter

        payloads = list(range(13))
        assert list(process_map_iter(_square, payloads, jobs=2)) == process_map(
            _square, payloads, jobs=2
        )
