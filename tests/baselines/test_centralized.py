"""The centralized n = 1 baseline."""

import numpy as np
import pytest

from repro.baselines import CentralizedSampler, centralize, distribution_overhead
from repro.core import sample_parallel, sample_sequential


class TestCentralize:
    def test_single_machine_same_data(self, small_db):
        central = centralize(small_db)
        assert central.n_machines == 1
        np.testing.assert_array_equal(central.joint_counts, small_db.joint_counts)
        assert central.nu == small_db.nu

    def test_same_target_state(self, small_db):
        from repro.core import target_amplitudes

        np.testing.assert_allclose(
            target_amplitudes(centralize(small_db)),
            target_amplitudes(small_db),
            atol=1e-12,
        )


class TestCentralizedSampler:
    def test_exact(self, small_db):
        result = CentralizedSampler(small_db).run()
        assert result.exact

    def test_overhead_factor_n_exactly(self, small_db):
        """Distributed sequential pays exactly n× the centralized cost."""
        central = CentralizedSampler(small_db).run()
        distributed = sample_sequential(small_db)
        assert (
            distributed.sequential_queries
            == small_db.n_machines * central.sequential_queries
        )
        assert distribution_overhead(small_db) == small_db.n_machines

    def test_parallel_matches_centralized_up_to_constant(self, small_db):
        """Parallel rounds = 2 × centralized queries (4 rounds vs 2 calls
        per D) regardless of n — distribution is round-free."""
        central = CentralizedSampler(small_db).run()
        parallel = sample_parallel(small_db)
        assert parallel.parallel_rounds == 2 * central.sequential_queries

    def test_predicted_queries(self, small_db):
        sampler = CentralizedSampler(small_db)
        assert sampler.predicted_queries() == sampler.run().sequential_queries

    def test_same_output_distribution(self, small_db):
        central = CentralizedSampler(small_db).run()
        np.testing.assert_allclose(
            central.output_probabilities, small_db.sampling_distribution(), atol=1e-10
        )
