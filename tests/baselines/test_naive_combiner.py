"""The footnote-1 no-go combiner."""

import numpy as np
import pytest

from repro.baselines import (
    BestLinearCombiner,
    combined_target,
    inner_product_violation,
    no_go_gap,
    pair_input,
)
from repro.errors import ValidationError


class TestViolation:
    def test_orthogonal_inputs_overlapping_outputs(self):
        inp, out = inner_product_violation(universe=5)
        assert inp == 0.0
        assert out == pytest.approx(0.5)

    def test_needs_three_elements(self):
        with pytest.raises(ValidationError):
            inner_product_violation(universe=2)


class TestTargets:
    def test_combined_target_normalized(self):
        vec = combined_target(0, 3, 6)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_distinct_elements_required(self):
        with pytest.raises(ValidationError):
            combined_target(2, 2, 6)

    def test_pair_input_is_basis_vector(self):
        vec = pair_input(1, 2, 3)
        assert vec[1 * 3 + 2] == 1.0
        assert np.linalg.norm(vec) == 1.0


class TestBestLinearCombiner:
    def test_raw_map_not_isometry(self):
        """Footnote 1 in matrix form: the demanded map can't preserve
        inner products."""
        assert not BestLinearCombiner(4).raw_map_is_isometry()

    def test_two_elements_is_trivially_fine(self):
        # With N = 2 there is a single pair — no conflicting demands.
        combiner = BestLinearCombiner(2)
        assert combiner.raw_map_is_isometry()
        assert combiner.assess().worst_fidelity == pytest.approx(1.0)

    def test_physical_combiner_strictly_lossy(self):
        assessment = BestLinearCombiner(4).assess()
        assert assessment.worst_fidelity < 1.0 - 1e-6
        assert assessment.mean_fidelity < 1.0 - 1e-6

    def test_gap_grows_with_universe(self):
        gaps = [no_go_gap(n) for n in (3, 6, 12)]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_large_universe_falls_below_threshold(self):
        """For modest N the best combiner already loses to the paper's
        9/16 fidelity threshold — combining per-machine samples is not a
        viable sampling strategy."""
        assessment = BestLinearCombiner(16).assess()
        assert assessment.worst_fidelity < 9 / 16

    def test_gap_requires_three(self):
        with pytest.raises(ValidationError):
            no_go_gap(2)

    def test_pair_count(self):
        assert BestLinearCombiner(5).pair_count == 10
