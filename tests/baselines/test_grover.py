"""Grover search as a degenerate sampling instance."""

import numpy as np
import pytest

from repro.baselines import (
    grover_database,
    grover_iteration_count,
    run_grover_search,
    uniform_subset_database,
)
from repro.core import sample_sequential
from repro.errors import ValidationError


class TestGroverDatabase:
    def test_single_marked_element(self):
        db = grover_database(16, marked=5)
        assert db.total_count == 1
        assert db.nu == 1
        assert db.joint_counts[5] == 1

    def test_distributed_holder(self):
        db = grover_database(16, marked=5, n_machines=3, holder=2)
        assert db.machine(2).size == 1
        assert db.machine(0).is_empty()

    def test_marked_range_checked(self):
        with pytest.raises(ValidationError):
            grover_database(4, marked=4)


class TestGroverSearch:
    @pytest.mark.parametrize("n_univ", [4, 16, 64, 256])
    def test_finds_with_certainty(self, n_univ):
        result = run_grover_search(n_univ, marked=n_univ // 3)
        assert result.found_probability == pytest.approx(1.0, abs=1e-9)

    def test_iteration_count_matches_textbook(self):
        result = run_grover_search(1024, marked=1)
        # Exact schedule uses ⌊m̃⌋ + possibly one partial iterate.
        assert result.classic_iterations <= result.iterations <= result.classic_iterations + 1

    def test_iterations_scale_sqrt_n(self):
        small = run_grover_search(64, marked=0).iterations
        large = run_grover_search(1024, marked=0).iterations
        assert large == pytest.approx(4 * small, abs=3)

    def test_distributed_grover_also_exact(self):
        result = run_grover_search(64, marked=9, n_machines=3)
        assert result.found_probability == pytest.approx(1.0, abs=1e-9)

    def test_iteration_count_helper(self):
        assert grover_iteration_count(64) >= 1


class TestUniformSubset:
    def test_index_erasure_style_target(self):
        support = np.array([2, 5, 11])
        db = uniform_subset_database(16, support)
        result = sample_sequential(db, backend="subspace")
        assert result.exact
        expected = np.zeros(16)
        expected[support] = 1 / 3
        np.testing.assert_allclose(result.output_probabilities, expected, atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            uniform_subset_database(8, np.array([]))
        with pytest.raises(ValidationError):
            uniform_subset_database(8, np.array([1, 1]))
        with pytest.raises(ValidationError):
            uniform_subset_database(8, np.array([9]))

    def test_distributed_variant(self):
        db = uniform_subset_database(12, np.array([0, 6]), n_machines=2)
        assert db.n_machines == 2
        result = sample_sequential(db, backend="subspace")
        assert result.exact
