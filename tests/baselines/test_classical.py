"""Classical coordinator baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ClassicalExactCoordinator,
    classical_beats_threshold,
    classical_mixture_fidelity,
)
from repro.database import DistributedDatabase, Multiset
from repro.errors import EmptyDatabaseError


class TestExactCoordinator:
    def test_costs_n_times_N(self, small_db):
        coordinator = ClassicalExactCoordinator(small_db)
        assert coordinator.query_cost() == small_db.n_machines * small_db.universe
        result = coordinator.run()
        assert result.queries == coordinator.query_cost()

    def test_learns_exact_counts(self, small_db):
        result = ClassicalExactCoordinator(small_db).run()
        np.testing.assert_array_equal(result.learned_counts, small_db.joint_counts)

    def test_ledger_per_machine(self, small_db):
        result = ClassicalExactCoordinator(small_db).run()
        assert result.ledger.per_machine() == [small_db.universe] * small_db.n_machines

    def test_sampling_matches_distribution(self, small_db):
        coordinator = ClassicalExactCoordinator(small_db)
        outcomes = coordinator.sample(20000, rng=0)
        freqs = np.bincount(outcomes, minlength=small_db.universe) / 20000
        np.testing.assert_allclose(
            freqs, small_db.sampling_distribution(), atol=0.02
        )

    def test_empty_database_sampling_rejected(self):
        db = DistributedDatabase.from_shards([Multiset.empty(4)], nu=1)
        with pytest.raises(EmptyDatabaseError):
            ClassicalExactCoordinator(db).sample(10)


class TestMixtureFidelity:
    def test_equals_max_frequency(self, tiny_db):
        assert classical_mixture_fidelity(tiny_db) == pytest.approx(0.4)

    def test_uniform_data_fidelity_vanishes_with_N(self):
        for n_univ in (4, 16, 64):
            counts = np.ones(n_univ, dtype=np.int64)
            db = DistributedDatabase.from_shards([Multiset.from_counts(counts)], nu=1)
            assert classical_mixture_fidelity(db) == pytest.approx(1 / n_univ)

    def test_below_quantum_exactness(self, small_db):
        from repro.core import sample_sequential

        classical = classical_mixture_fidelity(small_db)
        quantum = sample_sequential(small_db).fidelity
        assert quantum > classical


class TestThreshold:
    def test_spread_data_fails_threshold(self, small_db):
        assert not classical_beats_threshold(small_db)

    def test_concentrated_data_passes(self):
        db = DistributedDatabase.from_shards(
            [Multiset(4, {0: 9, 1: 1})], nu=9
        )
        assert classical_beats_threshold(db)
