"""Front-door fault masks: validation, masking, planner carriage."""

import pytest

from repro.analysis import InstanceSpec
from repro.api import DEFAULT_PLANNER, SamplingRequest
from repro.database import WorkloadSpec
from repro.database.dynamic import UpdateStream
from repro.errors import RequestError


def spec_of(universe=32, total=12, n=3):
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=universe, total=total),
        n_machines=n,
    )


class TestMaskValidation:
    def test_mask_is_normalized(self):
        request = SamplingRequest(spec=spec_of(), fault_mask=(2, 1, 2))
        assert request.fault_mask == (1, 2)

    def test_empty_mask_collapses_to_none(self):
        assert SamplingRequest(spec=spec_of(), fault_mask=()).fault_mask is None

    def test_mask_must_leave_a_survivor(self):
        with pytest.raises(RequestError, match="survive"):
            SamplingRequest(spec=spec_of(n=2), fault_mask=(0, 1))

    def test_mask_bounds_checked_against_the_spec(self):
        with pytest.raises(RequestError):
            SamplingRequest(spec=spec_of(n=2), fault_mask=(5,))

    def test_mask_bounds_checked_against_the_database(self, small_db):
        with pytest.raises(RequestError):
            SamplingRequest(
                database=small_db, fault_mask=(small_db.n_machines,)
            )

    def test_stream_requests_cannot_be_masked(self, small_db):
        stream = UpdateStream(small_db, [])
        with pytest.raises(RequestError, match="stream"):
            SamplingRequest(stream=stream, fault_mask=(0,))


class TestMasking:
    def test_masked_drops_the_shard_and_announces(self, small_db):
        request = SamplingRequest(database=small_db, fault_mask=(0,))
        degraded = request.masked(small_db)
        assert degraded.machine(0).size == 0
        assert degraded.machine(0).capacity == 0
        assert degraded.total_count == (
            small_db.total_count - small_db.machine(0).size
        )

    def test_masked_is_identity_without_a_mask(self, small_db):
        request = SamplingRequest(database=small_db)
        assert request.masked(small_db) is small_db


class TestPlannerCarriage:
    def test_resolved_requests_carry_the_mask(self):
        requests = [
            SamplingRequest(spec=spec_of(), seed=1, fault_mask=(1,)),
            SamplingRequest(spec=spec_of(), seed=2),
        ]
        resolved = DEFAULT_PLANNER.plan_many(requests).resolved
        assert resolved[0].fault_mask == (1,)
        assert resolved[1].fault_mask is None

    def test_masked_and_healthy_requests_pack_together(self):
        """The mask is per-request data, not a grouping key — degraded
        and healthy requests of the same shape share one group."""
        requests = [
            SamplingRequest(spec=spec_of(), seed=1, fault_mask=(1,)),
            SamplingRequest(spec=spec_of(), seed=2),
        ]
        groups = DEFAULT_PLANNER.plan_many(requests).groups
        assert len(groups) == 1
