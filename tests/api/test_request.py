"""SamplingRequest validation: sources, policies, labels, error routing."""

import pytest

from repro.analysis import InstanceSpec
from repro.api import SamplingRequest
from repro.database import WorkloadSpec
from repro.database.dynamic import UpdateStream
from repro.errors import ReproError, RequestError, ValidationError


def spec_of(universe=64, total=24, n=2):
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=universe, total=total),
        n_machines=n,
    )


class TestSourceValidation:
    def test_exactly_one_source_required(self):
        with pytest.raises(RequestError, match="exactly one"):
            SamplingRequest()

    def test_two_sources_rejected(self, small_db):
        with pytest.raises(RequestError, match="exactly one"):
            SamplingRequest(database=small_db, spec=spec_of())

    def test_source_kinds(self, small_db):
        assert SamplingRequest(database=small_db).source == "database"
        assert SamplingRequest(spec=spec_of()).source == "spec"
        stream = UpdateStream(small_db, [])
        assert SamplingRequest(stream=stream).source == "stream"

    def test_seed_requires_spec(self, small_db):
        with pytest.raises(RequestError, match="seed"):
            SamplingRequest(database=small_db, seed=3)
        assert SamplingRequest(spec=spec_of(), seed=3).seed == 3


class TestPolicyValidation:
    def test_unknown_model(self):
        with pytest.raises(RequestError, match="model"):
            SamplingRequest(spec=spec_of(), model="quantum")

    def test_unknown_capacity_policy(self):
        with pytest.raises(RequestError, match="capacity"):
            SamplingRequest(spec=spec_of(), capacity="sometimes")

    def test_empty_backend(self):
        with pytest.raises(RequestError, match="backend"):
            SamplingRequest(spec=spec_of(), backend="")

    def test_nonpositive_max_dense_dimension_rejected(self):
        for bad in (0, -1, -2**20):
            with pytest.raises(RequestError, match="max_dense_dimension"):
                SamplingRequest(spec=spec_of(), max_dense_dimension=bad)

    def test_max_dense_dimension_accepts_positive_and_default(self):
        assert SamplingRequest(spec=spec_of()).max_dense_dimension is None
        request = SamplingRequest(spec=spec_of(), max_dense_dimension=128)
        assert request.max_dense_dimension == 128

    def test_nonpositive_shards_rejected(self):
        for bad in (0, -1, -8):
            with pytest.raises(RequestError, match="shards"):
                SamplingRequest(spec=spec_of(), shards=bad)

    def test_shards_accepts_positive_and_default(self):
        assert SamplingRequest(spec=spec_of()).shards is None
        assert SamplingRequest(spec=spec_of(), shards=4).shards == 4

    def test_skip_zero_capacity_mapping(self):
        assert SamplingRequest(spec=spec_of()).skip_zero_capacity() is False
        assert (
            SamplingRequest(spec=spec_of(), capacity="skip_empty").skip_zero_capacity()
            is True
        )


class TestErrorsHierarchy:
    """Satellite: one base exception catches every front-door failure."""

    def test_request_error_is_repro_and_value_error(self):
        assert issubclass(RequestError, ReproError)
        assert issubclass(RequestError, ValidationError)
        assert issubclass(RequestError, ValueError)


class TestPlanningViews:
    def test_planning_universe(self, small_db):
        assert SamplingRequest(database=small_db).planning_universe() == 8
        assert SamplingRequest(spec=spec_of(universe=512)).planning_universe() == 512
        stream = UpdateStream(small_db, [])
        assert SamplingRequest(stream=stream).planning_universe() == 8

    def test_labels(self, small_db):
        spec = spec_of()
        assert SamplingRequest(spec=spec).resolved_label() == spec.label()
        assert SamplingRequest(stream=UpdateStream(small_db, [])).resolved_label() == "live"
        assert "N=8" in SamplingRequest(database=small_db).resolved_label()
        assert SamplingRequest(spec=spec, label="mine").resolved_label() == "mine"
