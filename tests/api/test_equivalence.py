"""The front door reproduces the legacy entry points, row for row.

The acceptance bar: a single :class:`SamplingRequest` round-trips
through all four strategies — per-instance, stacked batch, process
fan-out, served stream — with **bit-identical** rows to the legacy entry
points for the same seeds (the in-process strategies share the exact
code path, so equality is exact; the served path's batch composition is
timing-dependent, so fidelity is compared at the 1e-12 tolerance the
serving subsystem's own equivalence tests use, everything else exactly).
"""

import pytest

from repro import sample, sample_many
from repro.analysis import InstanceSpec
from repro.api import SamplingRequest, serve
from repro.batch import run_batched
from repro.core import ParallelSampler, SequentialSampler
from repro.database import WorkloadSpec
from repro.serve import SamplerService
from repro.utils.rng import as_generator, spawn_seed


def spec_of(total=24, n=2, universe=64, tag=""):
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=universe, total=total),
        n_machines=n,
        tag=tag,
    )


def mixed_specs(count=6):
    return [
        spec_of(48, 2, tag=f"hi{k}") if k % 2 else spec_of(6, 3, tag=f"lo{k}")
        for k in range(count)
    ]


def assert_rows_identical(api_rows, legacy_rows):
    """Every legacy column matches exactly (fidelity included)."""
    assert len(api_rows) == len(legacy_rows)
    for mine, ref in zip(api_rows, legacy_rows):
        for key, value in ref.items():
            assert mine[key] == value, (key, mine[key], value)


def assert_rows_equivalent(api_rows, legacy_rows):
    """1e-12 on fidelity, exact elsewhere (timing-dependent batching)."""
    assert len(api_rows) == len(legacy_rows)
    for mine, ref in zip(api_rows, legacy_rows):
        assert mine["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
        for key, value in ref.items():
            if key != "fidelity":
                assert mine[key] == value, (key, mine[key], value)


class TestInstanceStrategy:
    """repro.sample vs SequentialSampler / ParallelSampler."""

    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_database_request_matches_sampler(self, small_db, model):
        result = sample(
            SamplingRequest(database=small_db, model=model, backend="classes")
        )
        sampler_cls = SequentialSampler if model == "sequential" else ParallelSampler
        legacy = sampler_cls(small_db, backend="classes").run()
        assert result.strategy == "instance"
        assert result.fidelity == legacy.fidelity
        assert result.sampling.ledger.summary() == legacy.ledger.summary()
        assert (
            result.sampling.schedule.fingerprint() == legacy.schedule.fingerprint()
        )

    def test_spec_request_matches_sampler_for_same_seed(self):
        spec = spec_of()
        result = sample(SamplingRequest(spec=spec, seed=11, backend="subspace"))
        legacy = SequentialSampler(spec.build(rng=11), backend="subspace").run()
        assert result.fidelity == legacy.fidelity
        assert result.sampling.ledger.summary() == legacy.ledger.summary()

    def test_skip_zero_capacity_policy(self, mostly_empty_db):
        restricted = sample(
            SamplingRequest(
                database=mostly_empty_db, backend="subspace", capacity="skip_empty"
            )
        )
        legacy = SequentialSampler(
            mostly_empty_db, backend="subspace", skip_zero_capacity=True
        ).run()
        assert restricted.sequential_queries == legacy.sequential_queries
        assert restricted.sampling.ledger.per_machine() == legacy.ledger.per_machine()


class TestStackedStrategy:
    """repro.sample_many vs run_batched — bit-identical rows."""

    @pytest.mark.parametrize("model", ["sequential", "parallel"])
    def test_rows_match_run_batched(self, model):
        specs = mixed_specs()
        requests = [
            SamplingRequest(spec=spec, model=model, batchable=True) for spec in specs
        ]
        results = sample_many(requests, rng=7, batch_size=4)
        assert set(results.strategies()) == {"stacked"}
        # backend="auto" applies the same stacked-substrate rule the
        # planner does (subspace for these small-N sequential specs,
        # synced for parallel), so rows stay bit-identical.
        legacy = run_batched(specs, model=model, rng=7, batch_size=4, backend="auto")
        assert_rows_identical(results.rows(), legacy.rows)

    def test_explicit_classes_backend_matches_run_batched_default(self):
        specs = mixed_specs()
        requests = [
            SamplingRequest(spec=spec, backend="classes", batchable=True)
            for spec in specs
        ]
        results = sample_many(requests, rng=7, batch_size=4)
        assert set(r.backend for r in results) == {"classes"}
        legacy = run_batched(specs, rng=7, batch_size=4)
        assert_rows_identical(results.rows(), legacy.rows)

    def test_explicit_seeds_override_rng(self):
        spec = spec_of()
        gen = as_generator(5)
        seeds = [spawn_seed(gen) for _ in range(3)]
        explicit = sample_many(
            [SamplingRequest(spec=spec, seed=seed, batchable=True) for seed in seeds]
        )
        drawn = sample_many(
            [SamplingRequest(spec=spec, batchable=True)] * 3, rng=5
        )
        for mine, ref in zip(explicit.rows(), drawn.rows()):
            assert {k: v for k, v in mine.items() if k != "wall_time_s"} == {
                k: v for k, v in ref.items() if k != "wall_time_s"
            }


class TestFanoutStrategy:
    """repro.sample_many(jobs=2) vs run_batched(jobs=2) — bit-identical."""

    def test_rows_match_run_batched_jobs(self):
        specs = mixed_specs()
        requests = [SamplingRequest(spec=spec, batchable=True) for spec in specs]
        results = sample_many(requests, rng=7, batch_size=2, jobs=2)
        assert set(results.strategies()) == {"fanout"}
        legacy = run_batched(specs, rng=7, batch_size=2, jobs=2, backend="auto")
        assert_rows_identical(results.rows(), legacy.rows)
        # Fan-out ships rows, not states: the run stayed worker-side.
        assert all(result.sampling is None for result in results)


class TestServedStrategy:
    """repro.serve vs SamplerService — same seeds, same rows."""

    def test_rows_match_sampler_service(self):
        specs = mixed_specs()
        results = serve(
            [SamplingRequest(spec=spec, include_probabilities=False) for spec in specs],
            rng=7,
            batch_size=4,
            flush_deadline=0.01,
        )
        with SamplerService(
            rng=7, batch_size=4, flush_deadline=0.01, backend="auto"
        ) as service:
            for spec in specs:
                service.submit(spec)
            legacy_rows = service.rows()
        assert set(results.strategies()) == {"served"}
        assert results.telemetry is not None
        assert results.telemetry["completed"] == len(specs)
        assert_rows_equivalent(results.rows(), legacy_rows)

    def test_empty_stream(self):
        results = serve(iter(()))
        assert len(results) == 0 and results.telemetry is None

    def test_served_requests_honor_max_dense_dimension(self):
        """serve() must apply the request's dense cap exactly like
        repro.sample does — auto falls back to classes when 2N > cap."""
        request = SamplingRequest(
            spec=spec_of(), include_probabilities=False, max_dense_dimension=8
        )
        results = serve([request], rng=0)
        assert results[0].backend == "classes"

    def test_served_streams_homogeneous_in_dense_cap(self):
        from repro.errors import PlanningError

        capped = SamplingRequest(
            spec=spec_of(), include_probabilities=False, max_dense_dimension=8
        )
        uncapped = SamplingRequest(spec=spec_of(), include_probabilities=False)
        with pytest.raises(PlanningError, match="max_dense_dimension"):
            serve([capped, uncapped], rng=0)

    def test_sharded_serve_matches_unsharded(self):
        """``shards=`` on the front door routes to the sharded tier and
        reproduces the single-process service at 1e-12."""
        specs = mixed_specs()
        requests = [
            SamplingRequest(spec=spec, include_probabilities=False, shards=2)
            for spec in specs
        ]
        sharded = serve(requests, rng=7, batch_size=4, flush_deadline=0.01)
        unsharded = serve(
            [SamplingRequest(spec=spec, include_probabilities=False) for spec in specs],
            rng=7,
            batch_size=4,
            flush_deadline=0.01,
        )
        assert sharded.telemetry is not None
        assert sharded.telemetry["shards"] == 2
        assert sharded.telemetry["completed"] == len(specs)
        rows, refs = sharded.rows(), unsharded.rows()
        assert len(rows) == len(refs)
        for mine, ref in zip(rows, refs):
            assert mine["fidelity"] == pytest.approx(ref["fidelity"], abs=1e-12)
            for key, value in ref.items():
                if key not in ("fidelity", "wall_time_s"):
                    assert mine[key] == value, (key, mine[key], value)

    def test_sample_many_served_strategy_carries_telemetry(self):
        results = sample_many(
            [SamplingRequest(spec=spec_of(), include_probabilities=False)] * 3,
            rng=0,
            strategy="served",
        )
        assert results.telemetry is not None
        assert results.telemetry["completed"] == 3


class TestFourStrategyRoundTrip:
    """One request, four strategies: identical audit, consistent physics."""

    def test_single_request_round_trips_every_strategy(self):
        spec = spec_of(total=48, n=3)
        request = SamplingRequest(spec=spec, include_probabilities=False)

        def run(strategy, **kwargs):
            if strategy == "served":
                return serve([request], rng=7, **kwargs)[0]
            return sample_many([request], rng=7, strategy=strategy, **kwargs)[0]

        results = {
            "instance": run("instance"),
            "stacked": run("stacked"),
            "fanout": run("fanout", jobs=2),
            "served": run("served"),
        }
        # The audit surface is identical everywhere: same seed, same
        # plan, same honest ledger totals, exact fidelity.
        reference = results["stacked"].row()
        for strategy, result in results.items():
            row = result.row()
            assert result.strategy == strategy
            assert row["strategy"] == strategy
            assert row["exact"] is True
            for key in ("label", "n", "N", "M", "nu", "model",
                        "sequential_queries", "parallel_rounds",
                        "grover_reps", "d_applications"):
                assert row[key] == reference[key], (strategy, key)
            assert row["fidelity"] == pytest.approx(
                reference["fidelity"], abs=1e-12
            )
        # Stacked and fanout share one substrate (the planner resolved
        # the same stacked backend for both): bit-for-bit agreement.
        assert results["fanout"].row()["fidelity"] == reference["fidelity"]

    def test_round_trip_matches_each_legacy_entry_point(self):
        spec = spec_of(total=48, n=3)
        request = SamplingRequest(spec=spec, include_probabilities=False)

        stacked = sample_many([request], rng=7, strategy="stacked")
        legacy_batched = run_batched(
            [spec], rng=7, include_probabilities=False, backend="auto"
        )
        assert_rows_identical(stacked.rows(), legacy_batched.rows)

        fanout = sample_many([request], rng=7, strategy="fanout", jobs=2)
        legacy_fanout = run_batched(
            [spec], rng=7, jobs=2, include_probabilities=False, backend="auto"
        )
        assert_rows_identical(fanout.rows(), legacy_fanout.rows)

        served = serve([request], rng=7)
        with SamplerService(rng=7, backend="auto") as service:
            service.submit(spec)
            legacy_served = service.rows()
        assert_rows_equivalent(served.rows(), legacy_served)

        instance = sample_many([request], rng=7, strategy="instance")
        seed = spawn_seed(as_generator(7))
        legacy_instance = SequentialSampler(
            spec.build(rng=seed), backend=instance[0].backend
        ).run()
        assert instance[0].fidelity == legacy_instance.fidelity
        assert (
            instance[0].sampling.ledger.summary()
            == legacy_instance.ledger.summary()
        )


class TestResultSurface:
    def test_unified_columns_present(self):
        result = sample(SamplingRequest(spec=spec_of(), seed=0))
        row = result.row()
        for column in ("label", "n", "N", "M", "nu", "backend", "model",
                       "batched", "fidelity", "exact", "grover_reps",
                       "d_applications", "sequential_queries",
                       "parallel_rounds", "strategy", "wall_time_s"):
            assert column in row
        assert row["batched"] is False and row["strategy"] == "instance"

    def test_result_set_to_sweep(self):
        results = sample_many(
            [SamplingRequest(spec=spec_of(), batchable=True)] * 3, rng=0
        )
        sweep = results.to_sweep()
        assert len(sweep) == 3
        assert sweep.column("strategy") == ["stacked"] * 3

    def test_wall_time_recorded(self):
        result = sample(SamplingRequest(spec=spec_of(), seed=0))
        assert result.wall_time > 0
        assert result.row()["wall_time_s"] == result.wall_time
