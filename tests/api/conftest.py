"""Fixtures for the front-door test suite."""

import pytest

from repro.database import DistributedDatabase, Multiset


@pytest.fixture
def mostly_empty_db() -> DistributedDatabase:
    """5 machines, only two hold data (κ = 0 elsewhere)."""
    shards = [
        Multiset(16, {0: 1, 1: 1}),
        Multiset.empty(16),
        Multiset(16, {5: 2}),
        Multiset.empty(16),
        Multiset.empty(16),
    ]
    return DistributedDatabase.from_shards(shards, nu=2)
