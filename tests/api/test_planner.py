"""Planner unit tests: every routing branch, auto backend selection."""

import pytest

from repro.analysis import InstanceSpec
from repro.api import (
    CLASSES_UNIVERSE_THRESHOLD,
    STACK_THRESHOLD,
    Planner,
    SamplingRequest,
)
from repro.database import WorkloadSpec
from repro.database.dynamic import UpdateStream
from repro.errors import PlanningError, ReproError


def spec_of(universe=64, total=24, n=2):
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=universe, total=total),
        n_machines=n,
    )


def spec_request(universe=64, **kwargs):
    return SamplingRequest(spec=spec_of(universe=universe), **kwargs)


@pytest.fixture
def planner():
    return Planner()


class TestAutoBackend:
    """The acceptance bar: classes chosen for N ≥ 10⁵, dense below."""

    def test_classes_at_scale(self, planner):
        assert planner.auto_backend("sequential", CLASSES_UNIVERSE_THRESHOLD) == "classes"
        assert planner.auto_backend("parallel", 10**6) == "classes"

    def test_dense_fast_path_below_threshold(self, planner):
        assert planner.auto_backend("sequential", 64) == "subspace"
        assert planner.auto_backend("parallel", 64) == "synced"
        assert (
            planner.auto_backend("sequential", CLASSES_UNIVERSE_THRESHOLD - 1)
            == "subspace"
        )

    def test_plan_resolves_auto_by_universe(self, planner):
        small = planner.plan(spec_request(universe=64))
        large = planner.plan(spec_request(universe=10**5))
        assert small.backends() == ("subspace",)
        assert large.backends() == ("classes",)

    def test_explicit_backend_respected(self, planner):
        plan = planner.plan(spec_request(backend="oracles"))
        assert plan.backends() == ("oracles",)

    def test_incompatible_backend_rejected(self, planner):
        with pytest.raises(PlanningError, match="does not support"):
            planner.plan(spec_request(backend="dense"))  # parallel-only
        with pytest.raises(PlanningError, match="does not support"):
            planner.plan(spec_request(backend="nonsense"))

    def test_stream_always_classes(self, planner, small_db):
        request = SamplingRequest(stream=UpdateStream(small_db, []))
        assert planner.plan(request).backends() == ("classes",)

    def test_stream_rejects_dense_backend(self, planner, small_db):
        request = SamplingRequest(
            stream=UpdateStream(small_db, []), backend="subspace"
        )
        with pytest.raises(PlanningError, match="stream"):
            planner.plan(request)


class TestAutoStrategy:
    """The acceptance bar: stacked engine chosen for homogeneous B ≥ 64,
    with the stacked substrate picked by universe size."""

    def test_single_request_runs_per_instance(self, planner):
        assert planner.plan(spec_request()).strategies() == ("instance",)

    def test_homogeneous_small_n_group_stacks_dense(self, planner):
        """The stacked-dense branch: a homogeneous small-N sequential
        group of B ≥ threshold routes to the (B, N, 2) subspace stack."""
        plan = planner.plan_many([spec_request() for _ in range(STACK_THRESHOLD)])
        assert set(plan.strategies()) == {"stacked"}
        assert set(plan.backends()) == {"subspace"}
        assert len(plan.groups) == 1 and plan.groups[0].strategy == "stacked"

    def test_homogeneous_large_n_group_stacks_classes(self, planner):
        plan = planner.plan_many(
            [spec_request(universe=10**5) for _ in range(STACK_THRESHOLD)]
        )
        assert set(plan.strategies()) == {"stacked"}
        assert set(plan.backends()) == {"classes"}

    def test_parallel_groups_stack_on_synced(self, planner):
        """Parallel dense-eligible groups ride the (B, N, 2) synced stack."""
        plan = planner.plan_many(
            [spec_request(model="parallel") for _ in range(STACK_THRESHOLD)]
        )
        assert set(plan.strategies()) == {"stacked"}
        assert set(plan.backends()) == {"synced"}

    def test_max_dense_dimension_override_forces_classes(self, planner):
        """The per-request cap: 2N over the override → the dense stack
        (and the dense per-instance fast path) are off the table."""
        capped = [
            spec_request(max_dense_dimension=64)
            for _ in range(STACK_THRESHOLD)
        ]
        plan = planner.plan_many(capped)
        assert set(plan.strategies()) == {"stacked"}
        assert set(plan.backends()) == {"classes"}
        single = planner.plan(spec_request(max_dense_dimension=64))
        assert single.backends() == ("classes",)

    def test_mixed_universes_split_stacked_groups_by_backend(self, planner):
        small = [spec_request(batchable=True) for _ in range(2)]
        large = [spec_request(universe=10**5, batchable=True) for _ in range(2)]
        plan = planner.plan_many(small + large)
        assert plan.backends() == ("subspace", "subspace", "classes", "classes")
        assert len(plan.groups) == 2

    def test_below_threshold_runs_per_instance(self, planner):
        plan = planner.plan_many([spec_request() for _ in range(STACK_THRESHOLD - 1)])
        assert set(plan.strategies()) == {"instance"}

    def test_batchable_hint_stacks_any_size(self, planner):
        plan = planner.plan_many([spec_request(batchable=True)] * 2)
        assert set(plan.strategies()) == {"stacked"}

    def test_batchable_hint_is_per_request(self, planner):
        """A sibling's hint must not reroute hint-less requests."""
        plan = planner.plan_many([spec_request(), spec_request(batchable=True)])
        assert plan.strategies() == ("instance", "stacked")
        assert plan.backends() == ("subspace", "subspace")

    def test_batchable_false_pins_to_instance(self, planner):
        plan = planner.plan_many(
            [spec_request(batchable=False) for _ in range(STACK_THRESHOLD)]
        )
        assert set(plan.strategies()) == {"instance"}

    def test_explicit_subspace_backend_stacks(self, planner):
        """subspace is a stacked substrate now — an explicit choice keeps
        the dense representation and still batches."""
        plan = planner.plan_many(
            [spec_request(backend="subspace") for _ in range(STACK_THRESHOLD)]
        )
        assert set(plan.strategies()) == {"stacked"}
        assert set(plan.backends()) == {"subspace"}

    def test_unstackable_backend_never_stacks(self, planner):
        plan = planner.plan_many(
            [spec_request(backend="oracles") for _ in range(STACK_THRESHOLD)]
        )
        assert set(plan.strategies()) == {"instance"}

    def test_explicit_synced_backend_stacks(self, planner):
        """synced is a stacked substrate now — an explicit choice keeps
        the (B, N, 2) parallel layout and still batches."""
        synced = planner.plan_many(
            [spec_request(model="parallel", backend="synced")
             for _ in range(STACK_THRESHOLD)]
        )
        assert set(synced.strategies()) == {"stacked"}
        assert set(synced.backends()) == {"synced"}

    def test_heterogeneous_models_bucket_separately(self, planner):
        requests = [spec_request() for _ in range(STACK_THRESHOLD)] + [
            spec_request(model="parallel") for _ in range(STACK_THRESHOLD)
        ]
        plan = planner.plan_many(requests)
        assert set(plan.strategies()) == {"stacked"}
        assert len(plan.groups) == 2
        assert {g.indices[0] for g in plan.groups} == {0, STACK_THRESHOLD}

    def test_mixed_small_buckets_fall_back_to_instance(self, planner):
        requests = [spec_request()] * 32 + [spec_request(model="parallel")] * 32
        plan = planner.plan_many(requests)
        assert set(plan.strategies()) == {"instance"}

    def test_capacity_policy_splits_buckets(self, planner):
        requests = [spec_request()] * 32 + [spec_request(capacity="skip_empty")] * 32
        plan = planner.plan_many(requests)
        # Two half-size buckets, neither reaches the stack threshold.
        assert set(plan.strategies()) == {"instance"}

    def test_jobs_route_spec_loads_to_fanout(self, planner):
        plan = planner.plan_many([spec_request()] * 4, jobs=2)
        assert set(plan.strategies()) == {"fanout"}
        assert plan.jobs == 2

    def test_jobs_leave_database_requests_local(self, planner, small_db):
        plan = planner.plan_many(
            [SamplingRequest(database=small_db)] * 4, jobs=2
        )
        assert set(plan.strategies()) == {"instance"}

    def test_custom_thresholds(self):
        planner = Planner(stack_threshold=2, classes_universe_threshold=32)
        plan = planner.plan_many([spec_request()] * 2)
        assert set(plan.strategies()) == {"stacked"}
        assert planner.auto_backend("sequential", 32) == "classes"

    def test_thresholds_come_from_config(self):
        """One definition: the planner's defaults are the config fields."""
        from repro.config import CONFIG

        assert Planner().stack_threshold == CONFIG.stack_threshold
        assert Planner().classes_universe_threshold == (
            CONFIG.classes_universe_threshold
        )
        assert STACK_THRESHOLD == CONFIG.stack_threshold
        assert CLASSES_UNIVERSE_THRESHOLD == CONFIG.classes_universe_threshold

    def test_config_override_reaches_new_planners(self):
        from repro.config import CONFIG

        before = CONFIG.stack_threshold
        CONFIG.stack_threshold = 2
        try:
            plan = Planner().plan_many([spec_request()] * 2)
            assert set(plan.strategies()) == {"stacked"}
        finally:
            CONFIG.stack_threshold = before


class TestForcedStrategy:
    def test_forced_stacked(self, planner):
        plan = planner.plan(spec_request(), strategy="stacked")
        assert plan.strategies() == ("stacked",)
        # auto resolution still applies: small-N sequential → dense stack.
        assert plan.backends() == ("subspace",)
        large = planner.plan(spec_request(universe=10**5), strategy="stacked")
        assert large.backends() == ("classes",)

    def test_forced_fanout_and_served(self, planner):
        fanout = planner.plan(spec_request(), strategy="fanout", jobs=2)
        assert fanout.strategies() == ("fanout",)
        assert planner.plan(spec_request(), strategy="served").strategies() == ("served",)

    def test_forced_fanout_needs_jobs(self, planner):
        """A serial 'fan-out' would strip ledgers for nothing: rejected."""
        with pytest.raises(PlanningError, match="jobs"):
            planner.plan(spec_request(), strategy="fanout")
        with pytest.raises(PlanningError, match="jobs"):
            planner.plan(spec_request(), strategy="fanout", jobs=1)

    def test_forced_stacked_rejects_unstackable_backend(self, planner):
        with pytest.raises(PlanningError, match="not stackable"):
            planner.plan(spec_request(backend="oracles"), strategy="stacked")
        with pytest.raises(PlanningError, match="not stackable"):
            # subspace has no parallel stack registered.
            planner.plan(
                spec_request(model="parallel", backend="subspace"),
                strategy="stacked",
            )

    def test_batchable_hint_conflicts_with_unstackable_backend(self, planner):
        with pytest.raises(PlanningError, match="not batchable"):
            planner.plan(spec_request(backend="oracles", batchable=True))

    def test_explicit_subspace_backend_is_batchable(self, planner):
        request = spec_request(backend="subspace", batchable=True)
        plan = planner.plan(request)
        assert plan.strategies() == ("stacked",)
        assert plan.backends() == ("subspace",)

    def test_explicit_classes_backend_is_batchable_everywhere(self, planner):
        """backend='classes' IS the batch substrate — no conflict, on any
        strategy."""
        request = spec_request(backend="classes", batchable=True)
        assert planner.plan(request, strategy="instance").strategies() == ("instance",)
        assert planner.plan(request).strategies() == ("stacked",)

    def test_forced_fanout_rejects_database_source(self, planner, small_db):
        with pytest.raises(PlanningError, match="spec-built"):
            planner.plan(SamplingRequest(database=small_db), strategy="fanout", jobs=2)

    def test_forced_served_rejects_database_source(self, planner, small_db):
        with pytest.raises(PlanningError, match="serving"):
            planner.plan(SamplingRequest(database=small_db), strategy="served")

    def test_unknown_strategy(self, planner):
        with pytest.raises(PlanningError, match="strategy"):
            planner.plan(spec_request(), strategy="teleport")

    def test_planning_errors_are_repro_errors(self, planner):
        with pytest.raises(ReproError):
            planner.plan(spec_request(), strategy="teleport")


class TestPlanShape:
    def test_groups_partition_indices_in_order(self, planner):
        requests = (
            [spec_request(batchable=True)] * 2
            + [spec_request(backend="oracles")]
            + [spec_request(batchable=True)] * 2
        )
        plan = planner.plan_many(requests)
        covered = sorted(i for g in plan.groups for i in g.indices)
        assert covered == list(range(len(requests)))
        stacked = next(g for g in plan.groups if g.strategy == "stacked")
        assert stacked.indices == (0, 1, 3, 4)
        instance = next(g for g in plan.groups if g.strategy == "instance")
        assert instance.indices == (2,)

    def test_bad_batch_size_rejected(self, planner):
        with pytest.raises(PlanningError, match="batch_size"):
            planner.plan_many([spec_request()], batch_size=0)
