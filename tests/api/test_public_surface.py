"""The public-API surface snapshot (CI satellite).

``tests/api/public_api_manifest.json`` is the committed contract: the
importable names of ``repro`` and ``repro.api``.  Adding a name is a
deliberate act (regenerate the manifest in the same commit); removing or
renaming one fails here before it breaks a downstream caller.
"""

import importlib
import json
from pathlib import Path

import pytest

MANIFEST_PATH = Path(__file__).parent / "public_api_manifest.json"


@pytest.fixture(scope="module")
def manifest():
    return json.loads(MANIFEST_PATH.read_text())


@pytest.mark.parametrize("module_name", ["repro", "repro.api"])
class TestSurfaceSnapshot:
    def test_all_matches_manifest(self, manifest, module_name):
        module = importlib.import_module(module_name)
        assert sorted(module.__all__) == manifest[module_name], (
            f"{module_name}.__all__ drifted from the committed manifest; "
            "if intentional, regenerate tests/api/public_api_manifest.json"
        )

    def test_every_name_importable(self, manifest, module_name):
        module = importlib.import_module(module_name)
        for name in manifest[module_name]:
            assert getattr(module, name, None) is not None, name

    def test_dir_covers_manifest(self, manifest, module_name):
        module = importlib.import_module(module_name)
        missing = set(manifest[module_name]) - set(dir(module))
        assert not missing, f"dir({module_name}) misses {sorted(missing)}"


class TestFrontDoorAttributes:
    def test_lazy_exports_resolve(self):
        import repro

        assert callable(repro.sample)
        assert callable(repro.sample_many)
        assert repro.SamplingRequest is not None

    def test_serve_is_both_module_and_callable(self):
        """``repro.serve`` is the subpackage *and* the stream entry point."""
        import repro
        import repro.serve

        assert callable(repro.serve)
        assert repro.serve.SamplerService is not None
        results = repro.serve(iter(()))
        assert len(results) == 0
