"""Theorem 5.1/5.2 bound expressions and optimality ratios."""

import numpy as np
import pytest

from repro.core import sample_parallel, sample_sequential
from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError
from repro.lowerbound import (
    fidelity_threshold,
    lemma_5_7_constant,
    parallel_bound_expression,
    parallel_optimality,
    per_machine_query_floor,
    sequential_bound_expression,
    sequential_optimality,
)


class TestBoundExpressions:
    def test_sequential_sums_over_machines(self, tiny_db):
        # capacities (2, 1), N = 4, M = 5.
        expected = np.sqrt(2 * 4 / 5) + np.sqrt(1 * 4 / 5)
        assert sequential_bound_expression(tiny_db) == pytest.approx(expected)

    def test_parallel_takes_max(self, tiny_db):
        expected = np.sqrt(2 * 4 / 5)
        assert parallel_bound_expression(tiny_db) == pytest.approx(expected)

    def test_bounds_agree_for_single_machine(self, single_machine_db):
        assert sequential_bound_expression(single_machine_db) == pytest.approx(
            parallel_bound_expression(single_machine_db)
        )

    def test_empty_database_rejected(self):
        db = DistributedDatabase.from_shards([Multiset.empty(4)], nu=1)
        with pytest.raises(ValidationError):
            sequential_bound_expression(db)


class TestLemma57Constant:
    def test_exact_algorithm_constant_is_half(self):
        assert lemma_5_7_constant(alpha=1.0, epsilon=0.0) == pytest.approx(0.5)

    def test_decreases_with_epsilon(self):
        c0 = lemma_5_7_constant(1.0, 0.0)
        c1 = lemma_5_7_constant(1.0, 0.1)
        c2 = lemma_5_7_constant(1.0, 0.2)
        assert c0 > c1 > c2 > 0

    def test_alpha_gt_4eps_required(self):
        with pytest.raises(ValidationError):
            lemma_5_7_constant(alpha=0.3, epsilon=0.1)

    def test_range_validation(self):
        with pytest.raises(ValidationError):
            lemma_5_7_constant(alpha=1.5, epsilon=0.0)
        with pytest.raises(ValidationError):
            lemma_5_7_constant(alpha=1.0, epsilon=1.0)


class TestPerMachineFloor:
    def test_equation_13_value(self, tiny_db):
        floor = per_machine_query_floor(tiny_db, k=0)
        expected = np.sqrt(0.5 * 1.0 * 2 * 4 / (4 * 5))
        assert floor == pytest.approx(expected)

    def test_algorithm_meets_floor(self, small_db):
        result = sample_sequential(small_db)
        for k in range(small_db.n_machines):
            floor = per_machine_query_floor(small_db, k)
            assert result.ledger.machine_queries(k) >= floor


class TestOptimalityReports:
    def test_sequential_ratio_constant_across_scales(self):
        """measured/bound must stay within a constant band as N scales —
        the executable content of 'the algorithm is optimal'."""
        ratios = []
        for n_univ in (64, 256, 1024):
            db = DistributedDatabase.from_shards(
                [Multiset(n_univ, {0: 1, 1: 1}), Multiset(n_univ, {2: 1, 3: 1})],
                nu=1,
            )
            result = sample_sequential(db, backend="subspace")
            report = sequential_optimality(db, result.sequential_queries)
            ratios.append(report.ratio)
        assert max(ratios) / min(ratios) < 1.6

    def test_parallel_ratio_constant_across_scales(self):
        ratios = []
        for n_univ in (64, 256, 1024):
            db = DistributedDatabase.from_shards(
                [Multiset(n_univ, {0: 1, 1: 1}), Multiset(n_univ, {2: 1, 3: 1})],
                nu=1,
            )
            result = sample_parallel(db)
            report = parallel_optimality(db, result.parallel_rounds)
            ratios.append(report.ratio)
        assert max(ratios) / min(ratios) < 1.6

    def test_report_fields(self, small_db):
        result = sample_sequential(small_db)
        report = sequential_optimality(small_db, result.sequential_queries)
        assert report.model == "sequential"
        assert report.measured == result.sequential_queries
        assert report.ratio == pytest.approx(
            report.measured / report.bound_expression
        )

    def test_degenerate_bound_rejected(self):
        db = DistributedDatabase.from_shards(
            [Multiset(4, {0: 1})], capacities=[1], nu=1
        )
        # Force capacities to zero via emptied machines and nonzero data
        # elsewhere is impossible; instead verify the error path directly.
        empty_like = DistributedDatabase.from_shards(
            [Multiset(4, {0: 1}), Multiset.empty(4)],
            capacities=[1, 0],
            nu=1,
        )
        report = sequential_optimality(empty_like, 10)  # κ = (1, 0): bound > 0
        assert report.bound_expression > 0


class TestThreshold:
    def test_value(self):
        assert fidelity_threshold() == pytest.approx(9 / 16)

    def test_sampler_clears_threshold(self, small_db):
        result = sample_sequential(small_db)
        assert result.fidelity > fidelity_threshold()
