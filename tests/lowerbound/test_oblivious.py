"""Obliviousness verification and Lemma 5.3 measurement deferral."""

import numpy as np
import pytest

from repro.core import (
    ParallelSampler,
    SequentialSampler,
    sample_sequential,
    target_amplitudes,
)
from repro.errors import ObliviousnessError, ValidationError
from repro.lowerbound import (
    HardInputFamily,
    deferral_preserves_fidelity,
    deferred_measurement_fidelity,
    make_hard_input,
    measured_then_traced_fidelity,
    verify_oblivious,
)


@pytest.fixture
def family():
    base = make_hard_input(universe=8, n_machines=2, k=0, support_size=2, multiplicity=1)
    return HardInputFamily(base, k=0)


class TestVerifyOblivious:
    def test_family_members_share_schedule(self, family):
        dbs = family.sample_members(4, rng=0)
        digest = verify_oblivious(lambda db: SequentialSampler(db), dbs)
        assert len(digest) == 64

    def test_parallel_sampler_is_oblivious_too(self, family):
        dbs = family.sample_members(3, rng=1)
        verify_oblivious(lambda db: ParallelSampler(db), dbs)

    def test_detects_violation(self, family):
        # Two members whose shard-0 supports start at different elements,
        # so the cheating schedule below actually differs.
        dbs = [
            family.member(np.array([0, 1])),
            family.member(np.array([3, 5])),
        ]

        class Cheater:
            def __init__(self, db):
                self.db = db

            def schedule(self):
                # Schedule depends on private data — an obliviousness bug.
                from repro.core import QuerySchedule

                leak = int(self.db.machine(0).shard.support()[0])
                return QuerySchedule.sequential_from_plan(2, 1 + leak)

        with pytest.raises(ObliviousnessError):
            verify_oblivious(Cheater, dbs)

    def test_needs_two_databases(self, family):
        with pytest.raises(ValidationError):
            verify_oblivious(lambda db: SequentialSampler(db), family.sample_members(1, rng=0))


class TestDeferredMeasurement:
    def test_identity_on_sampler_output(self, small_db):
        """Appendix A: F(ρ', ψ) = F(ρ, ψ) on the real final state."""
        result = sample_sequential(small_db)
        target = target_amplitudes(small_db)
        assert deferral_preserves_fidelity(result, target)

    def test_both_fidelities_equal_on_random_states(self, rng):
        from repro.qsim import RegisterLayout, haar_random_state

        layout = RegisterLayout.of(i=4, s=3, w=2)
        target = np.sqrt(np.array([0.4, 0.3, 0.2, 0.1], dtype=complex))
        for _ in range(10):
            state = haar_random_state(layout, rng)
            f_a = measured_then_traced_fidelity(state, target)
            f_b = deferred_measurement_fidelity(state, target)
            assert f_a == pytest.approx(f_b, abs=1e-12)

    def test_measured_fidelity_of_exact_output(self, small_db):
        """Measuring the exact |ψ⟩ dephases it: F = Σ p_i² < 1 in general —
        the deferral identity is about *equality of the two protocols*,
        not about preserving coherence."""
        result = sample_sequential(small_db)
        target = target_amplitudes(small_db)
        f_measured = measured_then_traced_fidelity(result.final_state, target)
        probs = small_db.sampling_distribution()
        assert f_measured == pytest.approx(float((probs**2).sum()), abs=1e-10)

    def test_dimension_mismatch_rejected(self, small_db):
        result = sample_sequential(small_db)
        with pytest.raises(ValidationError):
            measured_then_traced_fidelity(result.final_state, np.ones(3))
