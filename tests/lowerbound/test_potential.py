"""The adversary potential D_t: growth law and final requirement."""

import numpy as np
import pytest

from repro.core import solve_plan
from repro.lowerbound import (
    HardInputFamily,
    make_hard_input,
    potential_curve,
    run_traced_sequential,
    truncated_fidelity_curve,
)


@pytest.fixture
def family():
    base = make_hard_input(universe=10, n_machines=2, k=0, support_size=3, multiplicity=2)
    return HardInputFamily(base, k=0)


class TestTracedRun:
    def test_snapshot_count_matches_query_count(self, family):
        base = family.base
        plan = solve_plan(base.initial_overlap())
        run = run_traced_sequential(base, plan, k=0, nu=base.nu)
        assert len(run.snapshots) == run.machine_k_calls + 1
        assert run.machine_k_calls == 2 * plan.d_applications

    def test_final_state_exact_on_own_input(self, family):
        from repro.core import fidelity_with_target

        base = family.base
        plan = solve_plan(base.initial_overlap())
        run = run_traced_sequential(base, plan, k=0, nu=base.nu)
        assert fidelity_with_target(base, run.final_state) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_reference_run_differs_from_member_runs(self, family):
        base = family.base
        plan = solve_plan(base.initial_overlap())
        member_run = run_traced_sequential(base, plan, k=0, nu=base.nu)
        ref_run = run_traced_sequential(family.reference(), plan, k=0, nu=base.nu)
        final_distance = member_run.final_state.distance(ref_run.final_state)
        assert final_distance > 0.1

    def test_snapshot_zero_is_common(self, family):
        base = family.base
        plan = solve_plan(base.initial_overlap())
        member_run = run_traced_sequential(base, plan, k=0, nu=base.nu)
        ref_run = run_traced_sequential(family.reference(), plan, k=0, nu=base.nu)
        assert member_run.snapshots[0].distance(ref_run.snapshots[0]) < 1e-12


class TestPotentialCurve:
    def test_growth_bound_lemma_5_8(self, family):
        curve = potential_curve(family, sample_size=6, rng=0)
        assert curve.within_bound()

    def test_starts_at_zero(self, family):
        curve = potential_curve(family, sample_size=4, rng=1)
        assert curve.measured[0] == pytest.approx(0.0, abs=1e-12)

    def test_monotone_bound(self, family):
        curve = potential_curve(family, sample_size=4, rng=1)
        assert np.all(np.diff(curve.bound) >= 0)

    def test_final_requirement_lemma_5_7(self, family):
        """An exact sampler must accumulate D_{t_k} ≥ M_k/(2M)."""
        curve = potential_curve(family, sample_size=8, rng=2)
        assert curve.meets_requirement()
        # For the all-on-one-machine base, M_k/M = 1 → requirement 1/2.
        assert curve.final_requirement == pytest.approx(0.5)

    def test_exhaustive_small_family(self):
        base = make_hard_input(universe=5, n_machines=1, k=0, support_size=2, multiplicity=1)
        family = HardInputFamily(base, k=0)
        curve = potential_curve(family, exhaustive=True)
        assert curve.sample_size == family.size()
        assert curve.within_bound()
        assert curve.meets_requirement()

    def test_bound_formula(self, family):
        curve = potential_curve(family, sample_size=3, rng=3)
        m_k = family.support_size
        n_univ = family.base.universe
        np.testing.assert_allclose(curve.bound, 4 * m_k / n_univ * curve.t**2)


class TestTruncatedFidelity:
    def test_measured_matches_prediction(self, sparse_db):
        curve = truncated_fidelity_curve(sparse_db)
        np.testing.assert_allclose(
            curve.fidelity, curve.predicted_fidelity, atol=1e-9
        )

    def test_fidelity_increases_to_near_one(self, sparse_db):
        curve = truncated_fidelity_curve(sparse_db)
        assert curve.fidelity[0] < curve.fidelity[-1]
        # Truncated plans omit the final partial iterate, so the ceiling is
        # sin²((2m+1)θ) — high, but not 1 (that's what the exact step buys).
        assert curve.fidelity[-1] > 0.8

    def test_queries_grow_linearly(self, sparse_db):
        curve = truncated_fidelity_curve(sparse_db)
        diffs = np.diff(curve.sequential_queries)
        assert np.all(diffs == diffs[0])

    def test_quadratic_small_budget_regime(self):
        """Fidelity after m iterations is sin²((2m+1)θ) ≈ (2m+1)²·a — the
        quadratic growth that mirrors the D_t ≤ O(t²) adversary bound."""
        base = make_hard_input(universe=64, n_machines=1, k=0, support_size=2, multiplicity=1)
        curve = truncated_fidelity_curve(base)
        theta = solve_plan(base.initial_overlap()).theta
        small = curve.iterations[: max(2, len(curve.iterations) // 3)]
        for m in small:
            quad = ((2 * m + 1) * theta) ** 2
            assert curve.fidelity[m] <= quad + 1e-9
            assert curve.fidelity[m] >= 0.4 * quad
