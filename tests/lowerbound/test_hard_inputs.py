"""Hard-input families (Definitions 5.4/5.5, Lemma 5.6)."""

from math import comb

import numpy as np
import pytest

from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError
from repro.lowerbound import (
    HardInputFamily,
    check_hard_input,
    lemma_5_6_size,
    make_hard_input,
)


class TestCondition:
    def test_canonical_hard_input_satisfies(self):
        db = make_hard_input(universe=10, n_machines=3, k=1, support_size=2, multiplicity=2)
        condition = check_hard_input(db, k=1, alpha=1.0, beta=1.0)
        assert condition.satisfied

    def test_heaviness_violated(self):
        # Machine 0 holds 1 of 5 elements: M_k < α·M for α = 1.
        shards = [Multiset(8, {0: 1}), Multiset(8, {1: 4})]
        db = DistributedDatabase.from_shards(shards, nu=5)
        condition = check_hard_input(db, k=0, alpha=1.0, beta=1.0)
        assert not condition.heavy
        assert not condition.satisfied

    def test_density_violated(self):
        # M_k/m_k = 1 but κ_k = 3 (declared): density fails for β = 1.
        shards = [Multiset(8, {0: 1, 1: 1})]
        db = DistributedDatabase.from_shards(shards, capacities=[3], nu=3)
        condition = check_hard_input(db, k=0, alpha=1.0, beta=1.0)
        assert not condition.dense

    def test_capacity_clause(self):
        # max_{j≠k} c_ij + max c_ik = 3 + 3 > ν = 4... choose to violate.
        shards = [Multiset(8, {0: 3}), Multiset(8, {0: 3})]
        db = DistributedDatabase.from_shards(shards, nu=6)
        assert check_hard_input(db, k=0, alpha=0.4, beta=1.0).capacity_ok
        db2 = db.with_nu(6)
        condition = check_hard_input(db2, k=0, alpha=0.4, beta=1.0)
        assert condition.capacity_ok  # 3 + 3 = 6 ≤ ν = 6
        shards3 = [Multiset(8, {0: 4}), Multiset(8, {0: 3})]
        db3 = DistributedDatabase.from_shards(shards3, nu=7)
        # 3 + 4 = 7 ≤ 7 ok; now α, β fine but lower ν in a copy is illegal, so
        # craft a violation with per-machine maxima instead:
        shards4 = [Multiset(8, {0: 4, 1: 4}), Multiset(8, {2: 4})]
        db4 = DistributedDatabase.from_shards(shards4, nu=7)
        condition4 = check_hard_input(db4, k=0, alpha=0.5, beta=1.0)
        assert not condition4.capacity_ok  # 4 + 4 = 8 > 7

    def test_parameter_validation(self, tiny_db):
        with pytest.raises(ValidationError):
            check_hard_input(tiny_db, k=0, alpha=0.0, beta=1.0)
        with pytest.raises(ValidationError):
            check_hard_input(tiny_db, k=0, alpha=1.0, beta=2.0)


class TestMakeHardInput:
    def test_structure(self):
        db = make_hard_input(universe=12, n_machines=3, k=2, support_size=4, multiplicity=3)
        assert db.machine(2).size == 12
        assert db.machine(0).is_empty()
        assert db.total_count == 12
        assert db.capacities == (0, 0, 3)

    def test_support_cannot_exceed_universe(self):
        with pytest.raises(ValidationError):
            make_hard_input(universe=3, n_machines=1, support_size=4)


class TestFamily:
    @pytest.fixture
    def family(self):
        base = make_hard_input(universe=8, n_machines=2, k=0, support_size=3, multiplicity=2)
        return HardInputFamily(base, k=0)

    def test_lemma_5_6_size(self, family):
        assert family.size() == comb(8, 3)
        assert lemma_5_6_size(8, 3) == comb(8, 3)

    def test_enumeration_count_matches_lemma(self):
        base = make_hard_input(universe=5, n_machines=1, k=0, support_size=2, multiplicity=1)
        family = HardInputFamily(base, k=0)
        members = list(family.enumerate_members())
        assert len(members) == comb(5, 2)

    def test_enumerated_members_distinct(self):
        base = make_hard_input(universe=5, n_machines=1, k=0, support_size=2, multiplicity=1)
        family = HardInputFamily(base, k=0)
        supports = {
            tuple(member.machine(0).shard.support())
            for member in family.enumerate_members()
        }
        assert len(supports) == comb(5, 2)

    def test_members_share_public_parameters(self, family):
        base_params = family.base.public_parameters()
        for member in family.sample_members(5, rng=0):
            assert member.public_parameters() == base_params

    def test_members_preserve_shard_statistics(self, family):
        base_machine = family.base.machine(0)
        for member in family.sample_members(5, rng=1):
            machine = member.machine(0)
            assert machine.size == base_machine.size
            assert machine.support_size == base_machine.support_size
            assert machine.natural_capacity == base_machine.natural_capacity

    def test_member_by_image(self, family):
        image = np.array([2, 5, 7])
        member = family.member(image)
        np.testing.assert_array_equal(member.machine(0).shard.support(), image)

    def test_other_machines_untouched(self):
        shards = [Multiset(8, {0: 2, 1: 2}), Multiset(8, {5: 1})]
        base = DistributedDatabase.from_shards(shards, capacities=[2, 1], nu=3)
        family = HardInputFamily(base, k=0, alpha=0.5, beta=1.0)
        member = family.member(np.array([3, 6]))
        np.testing.assert_array_equal(
            member.machine(1).counts, base.machine(1).counts
        )

    def test_reference_empties_k_only(self, family):
        ref = family.reference()
        assert ref.machine(0).is_empty()
        assert ref.machine(1).counts.sum() == family.base.machine(1).counts.sum()

    def test_invalid_base_rejected(self):
        shards = [Multiset(8, {0: 1}), Multiset(8, {1: 7})]
        db = DistributedDatabase.from_shards(shards, nu=8)
        with pytest.raises(ValidationError, match="hard-input condition"):
            HardInputFamily(db, k=0)

    def test_validation_can_be_skipped(self):
        shards = [Multiset(8, {0: 1}), Multiset(8, {1: 7})]
        db = DistributedDatabase.from_shards(shards, nu=8)
        family = HardInputFamily(db, k=0, validate=False)
        assert family.size() == comb(8, 1)
