"""Order-preserving permutations (Section 5.2)."""

import numpy as np
import pytest

from repro.database import Multiset
from repro.errors import ValidationError
from repro.lowerbound import (
    apply_to_shard,
    canonical_order_preserving,
    is_order_preserving,
    permutation_fixes_action,
    random_image_set,
)


class TestIsOrderPreserving:
    def test_identity_preserves(self):
        assert is_order_preserving(np.arange(6), np.array([1, 3, 5]))

    def test_monotone_relabeling_preserves(self):
        sigma = np.array([2, 4, 5, 0, 1, 3])  # support {0,1,2} → {2,4,5} ascending
        assert is_order_preserving(sigma, np.array([0, 1, 2]))

    def test_swap_violates(self):
        sigma = np.array([1, 0, 2])
        assert not is_order_preserving(sigma, np.array([0, 1]))

    def test_trivial_supports(self):
        sigma = np.array([2, 0, 1])
        assert is_order_preserving(sigma, np.array([]))
        assert is_order_preserving(sigma, np.array([1]))


class TestCanonical:
    def test_maps_support_to_image_in_order(self):
        sigma = canonical_order_preserving(8, np.array([0, 2, 5]), np.array([1, 4, 7]))
        assert sigma[0] == 1 and sigma[2] == 4 and sigma[5] == 7

    def test_is_permutation(self):
        sigma = canonical_order_preserving(8, np.array([0, 2, 5]), np.array([1, 4, 7]))
        assert sorted(sigma) == list(range(8))

    def test_is_order_preserving_for_support(self):
        support = np.array([1, 3, 4])
        image = np.array([0, 5, 6])
        sigma = canonical_order_preserving(10, support, image)
        assert is_order_preserving(sigma, support)

    def test_identity_when_image_equals_support(self):
        support = np.array([2, 4])
        sigma = canonical_order_preserving(6, support, support)
        np.testing.assert_array_equal(sigma, np.arange(6))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            canonical_order_preserving(6, np.array([0, 1]), np.array([2]))

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValidationError):
            canonical_order_preserving(4, np.array([0]), np.array([4]))

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            canonical_order_preserving(6, np.array([0, 0]), np.array([1, 2]))


class TestRandomImage:
    def test_size_and_sortedness(self, rng):
        image = random_image_set(20, 6, rng)
        assert image.shape == (6,)
        assert np.all(np.diff(image) > 0)

    def test_seeded(self):
        a = random_image_set(20, 5, 3)
        b = random_image_set(20, 5, 3)
        np.testing.assert_array_equal(a, b)


class TestShardAction:
    def test_sigma_induced_relabeling(self):
        shard = Multiset(6, {0: 2, 2: 1})
        sigma = canonical_order_preserving(6, np.array([0, 2]), np.array([3, 5]))
        moved = apply_to_shard(shard, sigma)
        assert moved.multiplicity(3) == 2
        assert moved.multiplicity(5) == 1
        assert moved.cardinality() == shard.cardinality()

    def test_multiplicity_order_preserved_along_support(self):
        # Order preservation means the sorted-support multiplicity sequence
        # transfers verbatim.
        shard = Multiset(8, {1: 5, 3: 2, 6: 9})
        image = np.array([0, 4, 7])
        sigma = canonical_order_preserving(8, shard.support(), image)
        moved = apply_to_shard(shard, sigma)
        np.testing.assert_array_equal(
            moved.counts[image], shard.counts[shard.support()]
        )


class TestActionEquivalence:
    def test_same_action_iff_same_on_support(self):
        support = np.array([0, 2])
        s1 = canonical_order_preserving(5, support, np.array([1, 3]))
        s2 = s1.copy()
        # Change s2 off the support only (swap two complement images).
        complement = [i for i in range(5) if i not in support]
        s2[complement[0]], s2[complement[1]] = s2[complement[1]], s2[complement[0]]
        assert permutation_fixes_action(s1, s2, support)
        s3 = canonical_order_preserving(5, support, np.array([0, 4]))
        assert not permutation_fixes_action(s1, s3, support)
