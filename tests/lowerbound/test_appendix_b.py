"""Appendix B: Lemma B.1 alignment, the E/F decomposition, Prop B.3."""

import numpy as np
import pytest

from repro.core import sample_sequential, target_amplitudes
from repro.lowerbound import (
    HardInputFamily,
    aligned_target_state,
    appendix_b_decomposition,
    make_hard_input,
    uhlmann_identity_gap,
)
from repro.qsim import RegisterLayout, haar_random_state


class TestLemmaB1Alignment:
    def test_identity_on_random_states(self, rng):
        """F(Tr_Y|s⟩⟨s|, ψ) = |⟨s|ψ̃⟩|² for arbitrary run states."""
        layout = RegisterLayout.of(i=4, s=3, w=2)
        target = np.sqrt(np.array([0.4, 0.3, 0.2, 0.1], dtype=complex))
        for _ in range(8):
            state = haar_random_state(layout, rng)
            assert uhlmann_identity_gap(state, target) < 1e-10

    def test_identity_on_sampler_output(self, small_db):
        result = sample_sequential(small_db)
        gap = uhlmann_identity_gap(result.final_state, target_amplitudes(small_db))
        assert gap < 1e-10

    def test_aligned_overlap_is_real_positive(self, rng):
        layout = RegisterLayout.of(i=4, w=2)
        target = np.sqrt(np.array([0.4, 0.3, 0.2, 0.1], dtype=complex))
        state = haar_random_state(layout, rng)
        aligned = aligned_target_state(state, target)
        overlap = state.overlap(aligned)
        assert overlap.imag == pytest.approx(0.0, abs=1e-12)
        assert overlap.real >= 0

    def test_aligned_state_is_valid_purification(self, rng):
        """Tr_Y |ψ̃⟩⟨ψ̃| must equal |ψ⟩⟨ψ| exactly."""
        from repro.qsim import pure_density, reduced_density_matrix

        layout = RegisterLayout.of(i=4, s=3, w=2)
        target = np.sqrt(np.array([0.1, 0.5, 0.15, 0.25], dtype=complex))
        state = haar_random_state(layout, rng)
        aligned = aligned_target_state(state, target)
        rho = reduced_density_matrix(aligned, ["i"])
        np.testing.assert_allclose(rho, pure_density(target), atol=1e-10)

    def test_exact_run_aligns_perfectly(self, small_db):
        result = sample_sequential(small_db)
        aligned = aligned_target_state(
            result.final_state, target_amplitudes(small_db)
        )
        assert abs(result.final_state.overlap(aligned)) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_dimension_mismatch_rejected(self, rng):
        from repro.errors import ValidationError

        layout = RegisterLayout.of(i=4, w=2)
        state = haar_random_state(layout, rng)
        with pytest.raises(ValidationError):
            aligned_target_state(state, np.ones(3))


@pytest.fixture
def family():
    # N = 32 ≥ 16·m_k satisfies Lemma B.4's condition M < β²κ_k N / 16.
    base = make_hard_input(universe=32, n_machines=2, k=0, support_size=2, multiplicity=2)
    return HardInputFamily(base, k=0)


class TestDecomposition:
    def test_exact_algorithm_has_zero_e(self, family):
        decomp = appendix_b_decomposition(family, sample_size=6, rng=0)
        assert decomp.e_t == pytest.approx(0.0, abs=1e-9)
        assert decomp.lemma_b2_holds()

    def test_lemma_b4_floor(self, family):
        decomp = appendix_b_decomposition(family, sample_size=6, rng=1)
        assert decomp.lemma_b4_floor == pytest.approx(0.5)  # M_k = M
        assert decomp.lemma_b4_holds()

    def test_inequality_15_chain(self, family):
        decomp = appendix_b_decomposition(family, sample_size=6, rng=2)
        assert decomp.inequality_15_holds()
        # With E = 0 the floor collapses to F_t, and D ≥ F exactly here.
        assert decomp.triangle_floor == pytest.approx(decomp.f_t, abs=1e-9)

    def test_proposition_b3_bound(self, family):
        decomp = appendix_b_decomposition(family, sample_size=8, rng=3)
        assert decomp.prop_b3_holds()
        assert decomp.prop_b3_lhs >= 0

    def test_full_chain_implies_lemma_5_7(self, family):
        """(15) + B.2 + B.4 ⇒ D ≥ (√(M_k/2M) − √(2ε))²  =  0.5 here."""
        decomp = appendix_b_decomposition(family, sample_size=8, rng=4)
        c_floor = (np.sqrt(decomp.lemma_b4_floor) - np.sqrt(decomp.lemma_b2_ceiling)) ** 2
        assert decomp.d_t >= c_floor - 1e-9

    def test_exhaustive_small_family(self):
        base = make_hard_input(universe=16, n_machines=1, k=0, support_size=1, multiplicity=1)
        fam = HardInputFamily(base, k=0)
        decomp = appendix_b_decomposition(fam, exhaustive=True)
        assert decomp.sample_size == 16
        assert decomp.inequality_15_holds()
        assert decomp.lemma_b4_holds()
