"""Target state |ψ⟩ of Eq. (4) and fidelity helpers."""

import numpy as np
import pytest

from repro.core import (
    fidelity_with_target,
    target_amplitudes,
    target_on_layout,
    target_state,
)
from repro.database import DistributedDatabase, Multiset
from repro.errors import EmptyDatabaseError
from repro.qsim import RegisterLayout, StateVector


class TestTargetAmplitudes:
    def test_equation_four(self, tiny_db):
        amps = target_amplitudes(tiny_db)
        expected = np.sqrt(np.array([2, 2, 0, 1]) / 5)
        np.testing.assert_allclose(amps, expected, atol=1e-12)

    def test_unit_norm(self, small_db):
        assert np.linalg.norm(target_amplitudes(small_db)) == pytest.approx(1.0)

    def test_measurement_distribution_is_frequencies(self, small_db):
        amps = target_amplitudes(small_db)
        np.testing.assert_allclose(
            np.abs(amps) ** 2, small_db.sampling_distribution(), atol=1e-12
        )

    def test_empty_rejected(self):
        db = DistributedDatabase.from_shards([Multiset.empty(4)], nu=1)
        with pytest.raises(EmptyDatabaseError):
            target_amplitudes(db)


class TestTargetState:
    def test_single_register_layout(self, tiny_db):
        state = target_state(tiny_db)
        assert state.layout.names == ("i",)
        assert state.norm() == pytest.approx(1.0)

    def test_embedded_in_larger_layout(self, tiny_db):
        layout = RegisterLayout.of(i=4, s=5, w=2)
        state = target_on_layout(tiny_db, layout)
        # Support only on s=0, w=0.
        assert state.probability_of({"s": 0, "w": 0}) == pytest.approx(1.0)
        projected = state.project_basis({"s": 0, "w": 0})
        np.testing.assert_allclose(
            projected.as_array(), target_amplitudes(tiny_db), atol=1e-12
        )


class TestFidelityWithTarget:
    def test_perfect_state(self, tiny_db):
        layout = RegisterLayout.of(i=4, w=2)
        state = target_on_layout(tiny_db, layout)
        assert fidelity_with_target(tiny_db, state) == pytest.approx(1.0)

    def test_global_phase_invariant(self, tiny_db):
        layout = RegisterLayout.of(i=4, w=2)
        state = target_on_layout(tiny_db, layout)
        state.apply_global_phase(np.exp(1j * 1.234))
        assert fidelity_with_target(tiny_db, state) == pytest.approx(1.0)

    def test_orthogonal_state(self, tiny_db):
        layout = RegisterLayout.of(i=4, w=2)
        state = StateVector.basis(layout, {"i": 2, "w": 0})  # c_2 = 0
        assert fidelity_with_target(tiny_db, state) == pytest.approx(0.0)

    def test_workspace_leakage_reduces_fidelity(self, tiny_db):
        layout = RegisterLayout.of(i=4, w=2)
        good = target_on_layout(tiny_db, layout)
        # Rotate some amplitude into w=1: fidelity must drop below 1.
        mats = np.stack([np.array([[np.sqrt(0.5), -np.sqrt(0.5)],
                                   [np.sqrt(0.5), np.sqrt(0.5)]])] * 4).astype(complex)
        good.apply_controlled_qubit_unitary("i", "w", mats)
        assert fidelity_with_target(tiny_db, good) == pytest.approx(0.5, abs=1e-9)
