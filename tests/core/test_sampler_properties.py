"""Property-based end-to-end sampler invariants (hypothesis).

Random small databases — arbitrary count matrices, capacities, machine
counts — must all yield: exact fidelity, ledger = closed form, output
distribution = c/M, and sequential/parallel agreement.  This is the
library's strongest single guarantee, so it gets the widest net.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import strict_mode
from repro.core import (
    ParallelSampler,
    SequentialSampler,
    parallel_round_count,
    sequential_oracle_calls,
    solve_plan,
)
from repro.database import DistributedDatabase, Multiset
from repro.utils.rng import as_generator


@st.composite
def databases(draw):
    """Random non-empty distributed databases with modest dimensions."""
    universe = draw(st.integers(min_value=2, max_value=10))
    n_machines = draw(st.integers(min_value=1, max_value=3))
    counts = np.array(
        draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=3),
                    min_size=universe,
                    max_size=universe,
                ),
                min_size=n_machines,
                max_size=n_machines,
            )
        ),
        dtype=np.int64,
    )
    if counts.sum() == 0:
        counts[0, 0] = 1
    joint_max = int(counts.sum(axis=0).max())
    headroom = draw(st.integers(min_value=0, max_value=3))
    shards = [Multiset.from_counts(row) for row in counts]
    return DistributedDatabase.from_shards(shards, nu=joint_max + headroom)


@settings(max_examples=40, deadline=None)
@given(db=databases())
def test_sequential_always_exact(db):
    result = SequentialSampler(db, backend="subspace").run()
    assert abs(result.fidelity - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(db=databases())
def test_sequential_ledger_matches_closed_form(db):
    result = SequentialSampler(db, backend="subspace").run()
    plan = solve_plan(db.initial_overlap())
    assert result.sequential_queries == sequential_oracle_calls(db.n_machines, plan)


@settings(max_examples=40, deadline=None)
@given(db=databases())
def test_output_distribution_is_frequencies(db):
    result = SequentialSampler(db, backend="subspace").run()
    np.testing.assert_allclose(
        result.output_probabilities, db.sampling_distribution(), atol=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(db=databases())
def test_parallel_matches_sequential(db):
    seq = SequentialSampler(db, backend="subspace").run()
    par = ParallelSampler(db).run()
    assert abs(par.fidelity - 1.0) < 1e-9
    assert par.parallel_rounds == parallel_round_count(par.plan)
    np.testing.assert_allclose(
        seq.output_probabilities, par.output_probabilities, atol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(db=databases())
def test_oracle_backend_agrees_with_subspace(db):
    subspace = SequentialSampler(db, backend="subspace").run()
    oracles = SequentialSampler(db, backend="oracles").run()
    assert abs(oracles.fidelity - 1.0) < 1e-9
    np.testing.assert_allclose(
        subspace.output_probabilities, oracles.output_probabilities, atol=1e-9
    )
    assert subspace.sequential_queries == oracles.sequential_queries


@settings(max_examples=15, deadline=None)
@given(db=databases())
def test_samplers_pass_strict_mode(db):
    """Every kernel application must preserve the norm exactly."""
    with strict_mode():
        result = SequentialSampler(db, backend="oracles").run()
    assert abs(result.fidelity - 1.0) < 1e-9


@settings(max_examples=25, deadline=None)
@given(db=databases(), data=st.data())
def test_schedule_depends_only_on_public_parameters(db, data):
    """Shuffling private data (a permutation of the joint dataset across
    machines preserving M_j and capacities is hard to synthesize generally,
    so we relabel keys uniformly) leaves the schedule unchanged."""
    sampler = SequentialSampler(db)
    fingerprint = sampler.schedule().fingerprint()

    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    sigma = as_generator(seed).permutation(db.universe)
    relabeled = DistributedDatabase(
        [m.replaced_shard(m.shard.permuted(sigma)) for m in db.machines],
        nu=db.nu,
    )
    assert relabeled.public_parameters()["M"] == db.public_parameters()["M"]
    assert SequentialSampler(relabeled).schedule().fingerprint() == fingerprint
