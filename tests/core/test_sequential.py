"""The sequential sampler (Theorem 4.3): exactness, costs, obliviousness."""

import numpy as np
import pytest

from repro.core import SequentialSampler, sample_sequential, solve_plan
from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError


class TestExactness:
    @pytest.mark.parametrize("backend", ["oracles", "subspace", "classes"])
    def test_fidelity_one(self, small_db, backend):
        result = SequentialSampler(small_db, backend=backend).run()
        assert result.fidelity == pytest.approx(1.0, abs=1e-10)
        assert result.exact

    @pytest.mark.parametrize("backend", ["oracles", "subspace", "classes"])
    def test_output_distribution_is_frequencies(self, small_db, backend):
        result = SequentialSampler(small_db, backend=backend).run()
        np.testing.assert_allclose(
            result.output_probabilities,
            small_db.sampling_distribution(),
            atol=1e-10,
        )

    def test_workspace_returns_to_zero(self, small_db):
        result = SequentialSampler(small_db, backend="oracles").run()
        state = result.final_state
        assert state.probability_of({"s": 0, "w": 0}) == pytest.approx(1.0, abs=1e-10)

    def test_exact_on_many_random_instances(self, rng):
        from repro.database import round_robin, zipf_dataset

        for trial in range(5):
            db = round_robin(
                zipf_dataset(12, 18, exponent=1.0, rng=rng), n_machines=2
            )
            result = sample_sequential(db, backend="subspace")
            assert result.fidelity == pytest.approx(1.0, abs=1e-9), trial


class TestQueryAccounting:
    @pytest.mark.parametrize("backend", ["oracles", "subspace", "classes"])
    def test_ledger_matches_closed_form(self, sparse_db, backend):
        sampler = SequentialSampler(sparse_db, backend=backend)
        result = sampler.run()
        plan = result.plan
        assert result.sequential_queries == 2 * sparse_db.n_machines * plan.d_applications
        assert result.sequential_queries == sampler.predicted_queries()

    def test_no_parallel_rounds(self, small_db):
        result = sample_sequential(small_db)
        assert result.parallel_rounds == 0

    def test_queries_split_evenly_across_machines(self, small_db):
        result = sample_sequential(small_db)
        per_machine = result.ledger.per_machine()
        assert len(set(per_machine)) == 1  # every machine queried equally

    def test_ledger_frozen_after_run(self, small_db):
        result = sample_sequential(small_db)
        with pytest.raises(ValidationError):
            result.ledger.record_machine_call(0)

    def test_schedule_matches_ledger(self, small_db):
        sampler = SequentialSampler(small_db)
        schedule = sampler.schedule()
        result = sampler.run()
        assert schedule.sequential_queries() == result.sequential_queries
        for j in range(small_db.n_machines):
            assert schedule.machine_queries(j) == result.ledger.machine_queries(j)


class TestObliviousness:
    def test_plan_uses_public_parameters_only(self, small_db):
        sampler = SequentialSampler(small_db)
        plan = sampler.plan()
        assert plan.overlap == pytest.approx(small_db.initial_overlap())

    def test_same_publics_same_schedule(self):
        # Two very different datasets with identical (N, n, ν, M, κ_j).
        a = DistributedDatabase.from_shards(
            [Multiset(8, {0: 2, 1: 1}), Multiset(8, {2: 1})], nu=3
        )
        b = DistributedDatabase.from_shards(
            [Multiset(8, {5: 2, 6: 1}), Multiset(8, {7: 1})], nu=3
        )
        assert a.public_parameters() == b.public_parameters()
        fp_a = SequentialSampler(a).schedule().fingerprint()
        fp_b = SequentialSampler(b).schedule().fingerprint()
        assert fp_a == fp_b

    def test_schedule_known_before_run(self, small_db):
        sampler = SequentialSampler(small_db)
        fp_before = sampler.schedule().fingerprint()
        sampler.run()
        assert sampler.schedule().fingerprint() == fp_before


class TestBackendEquivalence:
    def test_same_final_amplitudes(self, small_db):
        r_oracles = sample_sequential(small_db, backend="oracles")
        r_subspace = sample_sequential(small_db, backend="subspace")
        # Compare on the (i, w) registers with s projected at 0.
        oracle_view = r_oracles.final_state.project_basis({"s": 0})
        np.testing.assert_allclose(
            oracle_view.as_array(),
            r_subspace.final_state.as_array(),
            atol=1e-10,
        )

    def test_same_ledger(self, small_db):
        r_oracles = sample_sequential(small_db, backend="oracles")
        r_subspace = sample_sequential(small_db, backend="subspace")
        assert r_oracles.ledger.per_machine() == r_subspace.ledger.per_machine()


class TestEdgeCases:
    def test_full_database_single_d(self):
        db = DistributedDatabase.from_shards(
            [Multiset(4, {0: 2, 1: 2, 2: 2, 3: 2})], nu=2
        )
        result = sample_sequential(db)
        assert result.plan.d_applications == 1
        assert result.fidelity == pytest.approx(1.0)
        assert result.sequential_queries == 2

    def test_single_element_database(self):
        db = DistributedDatabase.from_shards([Multiset(8, {3: 1})], nu=1)
        result = sample_sequential(db)
        assert result.fidelity == pytest.approx(1.0, abs=1e-10)
        assert result.output_probabilities[3] == pytest.approx(1.0, abs=1e-10)

    def test_unknown_backend_rejected(self, small_db):
        with pytest.raises(ValidationError):
            SequentialSampler(small_db, backend="gpu")

    def test_result_summary_is_json_friendly(self, small_db):
        import json

        result = sample_sequential(small_db)
        dumped = json.dumps(result.summary())
        assert "sequential" in dumped

    def test_heterogeneous_capacities(self):
        db = DistributedDatabase.from_shards(
            [Multiset(8, {0: 3}), Multiset(8, {1: 1})],
            nu=4,
            capacities=[3, 2],
        )
        result = sample_sequential(db)
        assert result.exact
