"""Closed-form query costs vs theorem envelopes."""

import numpy as np
import pytest

from repro.core import (
    epsilon_condition_nu,
    parallel_round_count,
    predicted_costs,
    sequential_oracle_calls,
    solve_plan,
    speedup_factor,
    theoretical_parallel_rounds,
    theoretical_sequential_queries,
)
from repro.errors import ValidationError


class TestExactCounts:
    def test_sequential_formula(self):
        plan = solve_plan(0.05)
        assert sequential_oracle_calls(3, plan) == 2 * 3 * plan.d_applications

    def test_parallel_formula(self):
        plan = solve_plan(0.05)
        assert parallel_round_count(plan) == 4 * plan.d_applications

    def test_predicted_costs_dict(self, tiny_db):
        costs = predicted_costs(tiny_db)
        plan = solve_plan(tiny_db.initial_overlap())
        assert costs["sequential_queries"] == 2 * 2 * plan.d_applications
        assert costs["parallel_rounds"] == 4 * plan.d_applications
        assert costs["grover_reps"] == plan.grover_reps


class TestEnvelopes:
    def test_sequential_envelope_close_for_small_overlap(self):
        # For small a, exact ≈ envelope: 2n(2m+3) ≈ nπ√(νN/M).
        n, n_univ, total, nu = 3, 4096, 16, 1
        plan = solve_plan(total / (nu * n_univ))
        exact = sequential_oracle_calls(n, plan)
        envelope = theoretical_sequential_queries(n, n_univ, total, nu)
        assert exact == pytest.approx(envelope, rel=0.15)

    def test_parallel_envelope_close_for_small_overlap(self):
        n_univ, total, nu = 4096, 16, 1
        plan = solve_plan(total / (nu * n_univ))
        exact = parallel_round_count(plan)
        envelope = theoretical_parallel_rounds(n_univ, total, nu)
        assert exact == pytest.approx(envelope, rel=0.15)

    def test_envelope_scales_sqrt(self):
        base = theoretical_parallel_rounds(256, 16, 1)
        quadrupled = theoretical_parallel_rounds(1024, 16, 1)
        assert quadrupled == pytest.approx(2 * base)

    def test_envelope_linear_in_n(self):
        one = theoretical_sequential_queries(1, 256, 16, 1)
        five = theoretical_sequential_queries(5, 256, 16, 1)
        assert five == pytest.approx(5 * one)

    def test_capacity_invariant_enforced(self):
        with pytest.raises(ValidationError):
            theoretical_sequential_queries(1, 4, 100, 1)  # M > νN


class TestEpsilonCondition:
    def test_formula(self):
        # ν ≥ M/(Nε)
        assert epsilon_condition_nu(100, 50, 0.5) == 1
        assert epsilon_condition_nu(10, 50, 0.5) == 10

    def test_epsilon_range(self):
        with pytest.raises(ValidationError):
            epsilon_condition_nu(10, 10, 0.0)
        with pytest.raises(ValidationError):
            epsilon_condition_nu(10, 10, 1.0)

    def test_overlap_after_condition(self):
        # Choosing ν by the condition caps the overlap at ε.
        n_univ, total, eps = 64, 100, 0.3
        nu = epsilon_condition_nu(n_univ, total, eps)
        assert total / (nu * n_univ) <= eps + 1e-12


class TestSpeedup:
    def test_half_n(self):
        assert speedup_factor(6) == 3.0

    def test_matches_cost_ratio(self):
        plan = solve_plan(0.02)
        n = 8
        ratio = sequential_oracle_calls(n, plan) / parallel_round_count(plan)
        assert ratio == speedup_factor(n)
