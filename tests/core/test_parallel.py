"""The parallel sampler (Theorem 4.5): exactness, rounds, n-independence."""

import numpy as np
import pytest

from repro.core import ParallelSampler, SequentialSampler, sample_parallel
from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError


class TestExactness:
    def test_fidelity_one_synced(self, small_db):
        result = sample_parallel(small_db)
        assert result.fidelity == pytest.approx(1.0, abs=1e-10)
        assert result.exact

    def test_fidelity_one_dense(self, tiny_db):
        result = sample_parallel(tiny_db, backend="dense")
        assert result.fidelity == pytest.approx(1.0, abs=1e-10)

    def test_fidelity_one_classes(self, small_db):
        result = sample_parallel(small_db, backend="classes")
        assert result.fidelity == pytest.approx(1.0, abs=1e-10)
        assert result.exact

    def test_output_distribution(self, small_db):
        result = sample_parallel(small_db)
        np.testing.assert_allclose(
            result.output_probabilities, small_db.sampling_distribution(), atol=1e-10
        )

    def test_workspace_cleared(self, small_db):
        result = sample_parallel(small_db)
        assert result.final_state.probability_of({"s": 0, "w": 0}) == pytest.approx(
            1.0, abs=1e-10
        )


class TestRoundAccounting:
    def test_rounds_match_closed_form(self, sparse_db):
        sampler = ParallelSampler(sparse_db)
        result = sampler.run()
        assert result.parallel_rounds == 4 * result.plan.d_applications
        assert result.parallel_rounds == sampler.predicted_rounds()

    def test_rounds_independent_of_n(self):
        """The headline of Theorem 4.5: at fixed (N, M, ν), round count
        does not grow with the number of machines."""
        rounds = []
        for n in (1, 2, 4):
            shards = [Multiset(16, {0: 1, 1: 1})] + [
                Multiset.empty(16) for _ in range(n - 1)
            ]
            db = DistributedDatabase.from_shards(shards, nu=1)
            rounds.append(sample_parallel(db).parallel_rounds)
        assert rounds[0] == rounds[1] == rounds[2]

    def test_sequential_equivalent_work_scales_with_n(self, small_db):
        result = sample_parallel(small_db)
        assert (
            result.ledger.sequential_queries
            == result.parallel_rounds * small_db.n_machines
        )

    def test_speedup_over_sequential_is_half_n(self, small_db):
        seq = SequentialSampler(small_db).run()
        par = ParallelSampler(small_db).run()
        assert seq.sequential_queries / par.parallel_rounds == pytest.approx(
            small_db.n_machines / 2
        )


class TestBackendEquivalence:
    def test_dense_equals_synced_amplitudes(self, tiny_db):
        r_dense = sample_parallel(tiny_db, backend="dense")
        r_synced = sample_parallel(tiny_db, backend="synced")
        dense_main = r_dense.final_state.project_basis(
            {name: 0 for name in r_dense.final_state.layout.names if name.startswith("p")}
        )
        np.testing.assert_allclose(
            dense_main.as_array(), r_synced.final_state.as_array(), atol=1e-10
        )

    def test_dense_equals_synced_ledger(self, tiny_db):
        r_dense = sample_parallel(tiny_db, backend="dense")
        r_synced = sample_parallel(tiny_db, backend="synced")
        assert r_dense.parallel_rounds == r_synced.parallel_rounds


class TestObliviousness:
    def test_same_publics_same_schedule(self):
        a = DistributedDatabase.from_shards(
            [Multiset(8, {0: 2}), Multiset(8, {2: 1})], nu=3
        )
        b = DistributedDatabase.from_shards(
            [Multiset(8, {5: 1}), Multiset(8, {7: 2})], nu=3
        )
        assert ParallelSampler(a).schedule() == ParallelSampler(b).schedule()

    def test_schedule_is_all_parallel(self, small_db):
        schedule = ParallelSampler(small_db).schedule()
        assert all(e.kind == "parallel" for e in schedule)


class TestEdgeCases:
    def test_unknown_backend(self, small_db):
        with pytest.raises(ValidationError):
            ParallelSampler(small_db, backend="fast")

    def test_single_machine_parallel(self, single_machine_db):
        result = sample_parallel(single_machine_db)
        assert result.exact

    def test_matches_sequential_output(self, small_db):
        seq = SequentialSampler(small_db, backend="subspace").run()
        par = ParallelSampler(small_db).run()
        np.testing.assert_allclose(
            seq.output_probabilities, par.output_probabilities, atol=1e-10
        )
