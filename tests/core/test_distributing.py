"""The distributing operator D: Eq. (5), Lemma 4.2, Lemma 4.4."""

import numpy as np
import pytest

from repro.core import (
    DirectDistributingOperator,
    OracleDistributingOperator,
    ParallelDistributingOperator,
    rotation_blocks_from_counts,
    u_rotation_blocks,
)
from repro.database import DistributedDatabase, Multiset, QueryLedger
from repro.errors import ValidationError
from repro.qsim import (
    RegisterLayout,
    StateVector,
    haar_random_state,
    is_unitary,
    operator_matrix,
    uniform_state,
)


class TestRotationBlocks:
    def test_equation_five_column(self):
        blocks = rotation_blocks_from_counts(np.array([0, 2, 4]), nu=4)
        # D|i,0⟩ = √(c/ν)|0⟩ + √((ν−c)/ν)|1⟩ per element
        np.testing.assert_allclose(blocks[0][:, 0], [0, 1], atol=1e-12)
        np.testing.assert_allclose(
            blocks[1][:, 0], [np.sqrt(0.5), np.sqrt(0.5)], atol=1e-12
        )
        np.testing.assert_allclose(blocks[2][:, 0], [1, 0], atol=1e-12)

    def test_counts_above_nu_rejected(self):
        with pytest.raises(ValidationError):
            rotation_blocks_from_counts(np.array([5]), nu=4)

    def test_u_blocks_cover_full_range(self):
        blocks = u_rotation_blocks(3)
        assert blocks.shape == (4, 2, 2)
        for block in blocks:
            assert is_unitary(block)


class TestDirectOperator:
    def test_action_on_basis_states(self, tiny_db):
        op = DirectDistributingOperator(tiny_db)
        layout = RegisterLayout.of(i=4, w=2)
        counts = tiny_db.joint_counts
        nu = tiny_db.nu
        for i in range(4):
            state = StateVector.basis(layout, {"i": i, "w": 0})
            op.apply(state)
            assert state.amplitude({"i": i, "w": 0}) == pytest.approx(
                np.sqrt(counts[i] / nu)
            )
            assert state.amplitude({"i": i, "w": 1}) == pytest.approx(
                np.sqrt((nu - counts[i]) / nu)
            )

    def test_lemma_4_1_unitarity(self, tiny_db):
        """Lemma 4.1: D extends to a unitary on the whole space."""
        op = DirectDistributingOperator(tiny_db)
        layout = RegisterLayout.of(i=4, w=2)
        mat = operator_matrix(layout, lambda st: op.apply(st))
        assert is_unitary(mat)

    def test_adjoint_inverts(self, tiny_db, rng):
        op = DirectDistributingOperator(tiny_db)
        layout = RegisterLayout.of(i=4, w=2)
        state = haar_random_state(layout, rng)
        before = state.flat()
        op.apply(state)
        op.apply(state, adjoint=True)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)

    def test_equation_seven_on_uniform_input(self, small_db):
        op = DirectDistributingOperator(small_db)
        n_univ = small_db.universe
        layout = RegisterLayout.of(i=n_univ, w=2)
        amps = np.zeros((n_univ, 2), dtype=np.complex128)
        amps[:, 0] = uniform_state(n_univ)
        state = StateVector.from_array(layout, amps)
        op.apply(state)
        # Good component: √(M/νN) on |ψ,0⟩.
        a = small_db.initial_overlap()
        good_probability = state.probability_of({"w": 0})
        assert good_probability == pytest.approx(a, abs=1e-12)

    def test_ledger_charges_lemma_42_cost(self, tiny_db):
        ledger = QueryLedger(tiny_db.n_machines)
        op = DirectDistributingOperator(tiny_db, ledger=ledger)
        layout = RegisterLayout.of(i=4, w=2)
        op.apply(StateVector.zero(layout))
        assert ledger.sequential_queries == 2 * tiny_db.n_machines


class TestOracleOperator:
    def test_lemma_4_2_matches_direct_on_workspace_zero(self, tiny_db, rng):
        """The 2n-query circuit equals the Eq. (5) rotation on s = 0."""
        direct = DirectDistributingOperator(tiny_db)
        via_oracles = OracleDistributingOperator(tiny_db)
        layout_small = RegisterLayout.of(i=4, w=2)
        layout_full = RegisterLayout.of(i=4, s=tiny_db.nu + 1, w=2)

        small = haar_random_state(layout_small, rng)
        full_amps = np.zeros(layout_full.shape, dtype=np.complex128)
        full_amps[:, 0, :] = small.as_array()
        full = StateVector.from_array(layout_full, full_amps)

        direct.apply(small)
        via_oracles.apply(full)

        np.testing.assert_allclose(
            full.as_array()[:, 0, :], small.as_array(), atol=1e-12
        )
        # Counting register must return to |0⟩ exactly.
        assert full.probability_of({"s": 0}) == pytest.approx(1.0, abs=1e-12)

    def test_adjoint_matches_direct_adjoint(self, tiny_db, rng):
        direct = DirectDistributingOperator(tiny_db)
        via_oracles = OracleDistributingOperator(tiny_db)
        layout_small = RegisterLayout.of(i=4, w=2)
        layout_full = RegisterLayout.of(i=4, s=tiny_db.nu + 1, w=2)
        small = haar_random_state(layout_small, rng)
        full_amps = np.zeros(layout_full.shape, dtype=np.complex128)
        full_amps[:, 0, :] = small.as_array()
        full = StateVector.from_array(layout_full, full_amps)
        direct.apply(small, adjoint=True)
        via_oracles.apply(full, adjoint=True)
        np.testing.assert_allclose(
            full.as_array()[:, 0, :], small.as_array(), atol=1e-12
        )

    def test_exactly_2n_queries_per_application(self, small_db):
        ledger = QueryLedger(small_db.n_machines)
        op = OracleDistributingOperator(small_db, ledger=ledger)
        layout = RegisterLayout.of(i=small_db.universe, s=small_db.nu + 1, w=2)
        op.apply(StateVector.zero(layout))
        assert ledger.sequential_queries == 2 * small_db.n_machines
        op.apply(StateVector.zero(layout), adjoint=True)
        assert ledger.sequential_queries == 4 * small_db.n_machines

    def test_every_machine_queried_twice(self, small_db):
        ledger = QueryLedger(small_db.n_machines)
        op = OracleDistributingOperator(small_db, ledger=ledger)
        layout = RegisterLayout.of(i=small_db.universe, s=small_db.nu + 1, w=2)
        op.apply(StateVector.zero(layout))
        assert ledger.per_machine() == [2] * small_db.n_machines

    def test_is_unitary_on_full_space(self, tiny_db):
        op = OracleDistributingOperator(tiny_db)
        layout = RegisterLayout.of(i=4, s=tiny_db.nu + 1, w=2)
        mat = operator_matrix(layout, lambda st: op.apply(st))
        assert is_unitary(mat)


class TestParallelOperator:
    @pytest.fixture
    def db(self):
        return DistributedDatabase.from_shards(
            [Multiset(3, {0: 1, 1: 1}), Multiset(3, {1: 1})], nu=2
        )

    def test_lemma_4_4_four_rounds(self, db):
        for mode in ("synced", "dense"):
            ledger = QueryLedger(db.n_machines)
            op = ParallelDistributingOperator(db, ledger=ledger, mode=mode)
            layout = (
                ParallelDistributingOperator.dense_layout(db)
                if mode == "dense"
                else ParallelDistributingOperator.synced_layout(db)
            )
            op.apply(StateVector.zero(layout))
            assert ledger.parallel_rounds == 4, mode

    def test_dense_equals_synced_on_main_registers(self, db, rng):
        synced_layout = ParallelDistributingOperator.synced_layout(db)
        dense_layout = ParallelDistributingOperator.dense_layout(db)

        small = haar_random_state(synced_layout, rng)
        dense_amps = np.zeros(dense_layout.shape, dtype=np.complex128)
        dense_amps[:, :, :, 0, 0, 0, 0, 0, 0] = small.as_array()
        dense = StateVector.from_array(dense_layout, dense_amps)

        ParallelDistributingOperator(db, mode="synced").apply(small)
        ParallelDistributingOperator(db, mode="dense").apply(dense)

        np.testing.assert_allclose(
            dense.as_array()[:, :, :, 0, 0, 0, 0, 0, 0], small.as_array(), atol=1e-12
        )
        # All ancillas back to |0⟩.
        assert dense.probability_of(
            {"pi0": 0, "ps0": 0, "pb0": 0, "pi1": 0, "ps1": 0, "pb1": 0}
        ) == pytest.approx(1.0, abs=1e-12)

    def test_dense_adjoint_roundtrip(self, db, rng):
        layout = ParallelDistributingOperator.dense_layout(db)
        op = ParallelDistributingOperator(db, mode="dense")
        state = haar_random_state(layout, rng)
        before = state.flat()
        op.apply(state)
        op.apply(state, adjoint=True)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)

    def test_synced_matches_direct_rotation(self, db, rng):
        """On s = 0, the parallel D equals the Eq. (5) rotation too."""
        synced_layout = ParallelDistributingOperator.synced_layout(db)
        small_layout = RegisterLayout.of(i=3, w=2)
        small = haar_random_state(small_layout, rng)
        full_amps = np.zeros(synced_layout.shape, dtype=np.complex128)
        full_amps[:, 0, :] = small.as_array()
        full = StateVector.from_array(synced_layout, full_amps)

        DirectDistributingOperator(db).apply(small)
        ParallelDistributingOperator(db, mode="synced").apply(full)
        np.testing.assert_allclose(full.as_array()[:, 0, :], small.as_array(), atol=1e-12)

    def test_unknown_mode_rejected(self, db):
        with pytest.raises(ValidationError):
            ParallelDistributingOperator(db, mode="warp")
