"""The capacity-aware schedule optimization (skip κ_j = 0 machines)."""

import numpy as np
import pytest

from repro.core import OracleDistributingOperator, ParallelSampler, SequentialSampler
from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError


@pytest.fixture
def mostly_empty_db():
    """5 machines, only two hold data (κ = 0 elsewhere)."""
    shards = [
        Multiset(16, {0: 1, 1: 1}),
        Multiset.empty(16),
        Multiset(16, {5: 2}),
        Multiset.empty(16),
        Multiset.empty(16),
    ]
    return DistributedDatabase.from_shards(shards, nu=2)


class TestSkippingSemantics:
    def test_same_output_state(self, mostly_empty_db):
        full = SequentialSampler(mostly_empty_db, backend="subspace").run()
        skipping = SequentialSampler(
            mostly_empty_db, backend="subspace", skip_zero_capacity=True
        ).run()
        np.testing.assert_allclose(
            full.output_probabilities, skipping.output_probabilities, atol=1e-10
        )
        assert skipping.exact

    def test_query_savings(self, mostly_empty_db):
        full = SequentialSampler(mostly_empty_db).run()
        skipping = SequentialSampler(mostly_empty_db, skip_zero_capacity=True).run()
        # 2 active machines of 5 → cost ratio exactly 2/5.
        assert skipping.sequential_queries * 5 == full.sequential_queries * 2

    def test_skipped_machines_never_queried(self, mostly_empty_db):
        result = SequentialSampler(mostly_empty_db, skip_zero_capacity=True).run()
        per_machine = result.ledger.per_machine()
        assert per_machine[1] == per_machine[3] == per_machine[4] == 0
        assert per_machine[0] > 0 and per_machine[2] > 0

    def test_oracles_backend_agrees(self, mostly_empty_db):
        subspace = SequentialSampler(
            mostly_empty_db, backend="subspace", skip_zero_capacity=True
        ).run()
        oracles = SequentialSampler(
            mostly_empty_db, backend="oracles", skip_zero_capacity=True
        ).run()
        assert subspace.sequential_queries == oracles.sequential_queries
        np.testing.assert_allclose(
            subspace.output_probabilities, oracles.output_probabilities, atol=1e-10
        )

    def test_no_zero_capacity_machines_changes_nothing(self, small_db):
        plain = SequentialSampler(small_db).run()
        skipping = SequentialSampler(small_db, skip_zero_capacity=True).run()
        assert plain.sequential_queries == skipping.sequential_queries


class TestObliviousnessPreserved:
    def test_schedule_from_public_capacities_only(self, mostly_empty_db):
        """Two members differing only in private data (same κ) share the
        capacity-aware schedule."""
        other = mostly_empty_db.replaced_machine(
            0,
            mostly_empty_db.machine(0).replaced_shard(Multiset(16, {8: 1, 9: 1})),
        )
        assert other.public_parameters() == mostly_empty_db.public_parameters()
        fp_a = SequentialSampler(mostly_empty_db, skip_zero_capacity=True).schedule()
        fp_b = SequentialSampler(other, skip_zero_capacity=True).schedule()
        assert fp_a.fingerprint() == fp_b.fingerprint()

    def test_predicted_queries_match_run(self, mostly_empty_db):
        sampler = SequentialSampler(mostly_empty_db, skip_zero_capacity=True)
        assert sampler.predicted_queries() == sampler.run().sequential_queries

    def test_active_machines_listing(self, mostly_empty_db):
        sampler = SequentialSampler(mostly_empty_db, skip_zero_capacity=True)
        assert sampler.active_machines() == [0, 2]


class TestGuards:
    def test_cannot_skip_nonempty_capacity_machine(self, mostly_empty_db):
        with pytest.raises(ValidationError, match="cannot skip"):
            OracleDistributingOperator(mostly_empty_db, active_machines=[0])

    def test_active_index_range_checked(self, mostly_empty_db):
        with pytest.raises(ValidationError):
            OracleDistributingOperator(mostly_empty_db, active_machines=[0, 2, 9])

    def test_bound_consistency(self, mostly_empty_db):
        """The Theorem 5.1 expression already ignores κ_j = 0 machines, so
        the optimized algorithm remains within a constant of it."""
        from repro.lowerbound import sequential_bound_expression

        result = SequentialSampler(mostly_empty_db, skip_zero_capacity=True).run()
        bound = sequential_bound_expression(mostly_empty_db)
        assert result.sequential_queries >= 0.2 * bound


class TestParallelFlaggedRounds:
    """The Theorem 5.2-side analogue: flagged joint-oracle rounds skip κ = 0."""

    def test_same_output_state(self, mostly_empty_db):
        full = ParallelSampler(mostly_empty_db, backend="synced").run()
        skipping = ParallelSampler(
            mostly_empty_db, backend="synced", skip_zero_capacity=True
        ).run()
        np.testing.assert_allclose(
            full.output_probabilities, skipping.output_probabilities, atol=1e-10
        )
        assert skipping.exact

    def test_rounds_unchanged_but_fewer_queries(self, mostly_empty_db):
        """The round count is n-free (Theorem 4.5) so it cannot drop; the
        ledger's total work Σ_j t_j falls to rounds × active machines."""
        full = ParallelSampler(mostly_empty_db).run()
        skipping = ParallelSampler(mostly_empty_db, skip_zero_capacity=True).run()
        assert skipping.parallel_rounds == full.parallel_rounds
        assert skipping.sequential_queries < full.sequential_queries
        # 2 active machines of 5: total work ratio is exactly 2/5.
        assert skipping.sequential_queries * 5 == full.sequential_queries * 2
        assert skipping.sequential_queries == skipping.parallel_rounds * 2

    def test_skipped_machines_never_queried(self, mostly_empty_db):
        result = ParallelSampler(mostly_empty_db, skip_zero_capacity=True).run()
        per_machine = result.ledger.per_machine()
        assert per_machine[1] == per_machine[3] == per_machine[4] == 0
        assert per_machine[0] == per_machine[2] == result.parallel_rounds

    def test_classes_backend_agrees(self, mostly_empty_db):
        synced = ParallelSampler(
            mostly_empty_db, backend="synced", skip_zero_capacity=True
        ).run()
        classes = ParallelSampler(
            mostly_empty_db, backend="classes", skip_zero_capacity=True
        ).run()
        assert synced.ledger.summary() == classes.ledger.summary()
        np.testing.assert_allclose(
            synced.output_probabilities, classes.output_probabilities, atol=1e-10
        )

    def test_dense_backend_agrees(self):
        """Honest per-machine ancillas: skipped flags stay |0⟩ throughout."""
        shards = [Multiset(4, {0: 1, 1: 1}), Multiset.empty(4), Multiset(4, {3: 1})]
        db = DistributedDatabase.from_shards(shards, nu=2)
        synced = ParallelSampler(db, backend="synced", skip_zero_capacity=True).run()
        dense = ParallelSampler(db, backend="dense", skip_zero_capacity=True).run()
        assert synced.ledger.summary() == dense.ledger.summary()
        np.testing.assert_allclose(
            synced.output_probabilities, dense.output_probabilities, atol=1e-10
        )

    def test_schedule_publishes_flagged_subset(self, mostly_empty_db):
        sampler = ParallelSampler(mostly_empty_db, skip_zero_capacity=True)
        schedule = sampler.schedule()
        assert all(e.machines == (0, 2) for e in schedule)
        assert schedule.machine_queries(0) == schedule.parallel_rounds()
        assert schedule.machine_queries(1) == 0
        plain = ParallelSampler(mostly_empty_db).schedule()
        assert schedule.fingerprint() != plain.fingerprint()

    def test_schedule_matches_ledger(self, mostly_empty_db):
        sampler = ParallelSampler(mostly_empty_db, skip_zero_capacity=True)
        result = sampler.run()
        for j in range(mostly_empty_db.n_machines):
            assert result.schedule.machine_queries(j) == result.ledger.machine_queries(j)
        assert sampler.predicted_total_queries() == result.sequential_queries

    def test_cannot_skip_nonempty_machine_via_parallel_oracle(self, mostly_empty_db):
        from repro.database import ParallelOracle

        with pytest.raises(ValidationError, match="cannot skip"):
            ParallelOracle(mostly_empty_db, active_machines=[0])

    def test_no_zero_capacity_machines_changes_nothing(self, small_db):
        plain = ParallelSampler(small_db).run()
        skipping = ParallelSampler(small_db, skip_zero_capacity=True).run()
        assert plain.ledger.summary() == skipping.ledger.summary()
        assert plain.schedule.fingerprint() == skipping.schedule.fingerprint()


class TestAllOperatorsValidateSkips:
    """Every D implementation rejects skipping a machine that may act."""

    def test_class_operator_rejects_nonempty_skip(self, mostly_empty_db):
        from repro.core import ClassDistributingOperator

        with pytest.raises(ValidationError, match="cannot skip"):
            ClassDistributingOperator(mostly_empty_db, active_machines=[0])

    def test_direct_operator_rejects_nonempty_skip(self, mostly_empty_db):
        from repro.core import DirectDistributingOperator

        with pytest.raises(ValidationError, match="cannot skip"):
            DirectDistributingOperator(mostly_empty_db, active_machines=[0])

    def test_parallel_operator_rejects_nonempty_skip(self, mostly_empty_db):
        from repro.core import ParallelDistributingOperator

        with pytest.raises(ValidationError, match="cannot skip"):
            ParallelDistributingOperator(mostly_empty_db, active_machines=[0])

    def test_class_operator_accepts_sound_skip(self, mostly_empty_db):
        from repro.core import ClassDistributingOperator

        op = ClassDistributingOperator(mostly_empty_db, active_machines=[0, 2])
        assert op.oracle_calls_per_application == 4
