"""The shared amplification engine vs the 2×2 subspace algebra."""

import numpy as np
import pytest

from repro.core import (
    DirectDistributingOperator,
    apply_q,
    apply_s_chi,
    apply_s_pi,
    initial_decomposition,
    q_matrix,
    run_amplification,
    solve_plan,
    state_after_iterations,
)
from repro.qsim import RegisterLayout, StateVector, uniform_preparation_matrix, uniform_state


def _prepared_state(db):
    layout = RegisterLayout.of(i=db.universe, w=2)
    state = StateVector.zero(layout)
    state.apply_local_unitary("i", uniform_preparation_matrix(db.universe))
    return state


def _component(state, db, which):
    """Project the full state onto the 2-D (good, bad) basis."""
    decomp = initial_decomposition(db)
    arr = state.as_array()
    if which == "good":
        return complex(np.vdot(decomp.good, arr[:, 0]))
    return complex(np.vdot(decomp.bad, arr[:, 1]))


class TestReflections:
    def test_s_chi_phases_flag_zero(self, small_db, rng):
        layout = RegisterLayout.of(i=8, w=2)
        from repro.qsim import haar_random_state

        state = haar_random_state(layout, rng)
        before0 = state.as_array()[:, 0].copy()
        before1 = state.as_array()[:, 1].copy()
        apply_s_chi(state, 0.8)
        np.testing.assert_allclose(
            state.as_array()[:, 0], np.exp(1j * 0.8) * before0, atol=1e-12
        )
        np.testing.assert_allclose(state.as_array()[:, 1], before1, atol=1e-12)

    def test_s_pi_phases_pi_zero_component_only(self, small_db):
        layout = RegisterLayout.of(i=8, w=2)
        amps = np.zeros((8, 2), dtype=np.complex128)
        amps[:, 0] = uniform_state(8)
        state = StateVector.from_array(layout, amps)
        apply_s_pi(state, np.pi)
        np.testing.assert_allclose(state.as_array()[:, 0], -uniform_state(8), atol=1e-12)

    def test_s_pi_leaves_orthogonal_untouched(self):
        layout = RegisterLayout.of(i=4, w=2)
        # A state orthogonal to |π⟩ on i: (1, -1, 0, 0)/√2 with w=0.
        amps = np.zeros((4, 2), dtype=np.complex128)
        amps[0, 0] = 1 / np.sqrt(2)
        amps[1, 0] = -1 / np.sqrt(2)
        state = StateVector.from_array(layout, amps)
        before = state.flat()
        apply_s_pi(state, 1.1)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)


class TestQAgainstSubspaceAlgebra:
    @pytest.mark.parametrize("varphi,phi", [(np.pi, np.pi), (0.7, 2.1), (-1.2, 0.4)])
    def test_full_simulation_tracks_2x2(self, small_db, varphi, phi):
        """Simulated amplitudes must match the 2×2 matrix algebra exactly."""
        d_op = DirectDistributingOperator(small_db)

        def d_apply(s, adjoint=False):
            return d_op.apply(s, "i", "w", adjoint=adjoint)

        state = _prepared_state(small_db)
        d_apply(state)  # now sinθ|good⟩ + cosθ|bad⟩
        theta = initial_decomposition(small_db).theta
        v = np.array([np.sin(theta), np.cos(theta)], dtype=complex)

        for _ in range(3):
            apply_q(state, d_apply, varphi, phi)
            v = q_matrix(theta, varphi, phi) @ v
            assert _component(state, small_db, "good") == pytest.approx(v[0], abs=1e-10)
            assert _component(state, small_db, "bad") == pytest.approx(v[1], abs=1e-10)

    def test_state_stays_in_invariant_plane(self, small_db):
        d_op = DirectDistributingOperator(small_db)

        def d_apply(s, adjoint=False):
            return d_op.apply(s, "i", "w", adjoint=adjoint)

        state = _prepared_state(small_db)
        d_apply(state)
        for _ in range(4):
            apply_q(state, d_apply, np.pi, np.pi)
            good = _component(state, small_db, "good")
            bad = _component(state, small_db, "bad")
            assert abs(good) ** 2 + abs(bad) ** 2 == pytest.approx(1.0, abs=1e-10)


class TestRunAmplification:
    def test_on_step_callback_order(self, small_db):
        plan = solve_plan(small_db.initial_overlap())
        d_op = DirectDistributingOperator(small_db)

        def d_apply(s, adjoint=False):
            return d_op.apply(s, "i", "w", adjoint=adjoint)

        labels = []
        state = _prepared_state(small_db)
        run_amplification(
            state, plan, d_apply, on_step=lambda label, _s: labels.append(label)
        )
        assert labels[0] == "D"
        assert len(labels) == 1 + plan.iterations
        if plan.needs_final:
            assert labels[-1] == "Q[final]"

    def test_intermediate_good_amplitude_follows_sine(self, sparse_db):
        plan = solve_plan(sparse_db.initial_overlap())
        d_op = DirectDistributingOperator(sparse_db)

        def d_apply(s, adjoint=False):
            return d_op.apply(s, "i", "w", adjoint=adjoint)

        theta = plan.theta
        goods = []
        state = _prepared_state(sparse_db)
        run_amplification(
            state,
            plan,
            d_apply,
            on_step=lambda label, s: goods.append(
                abs(_component(s, sparse_db, "good"))
            ),
        )
        for idx in range(plan.grover_reps + 1):
            expected = abs(np.sin((2 * idx + 1) * theta))
            assert goods[idx] == pytest.approx(expected, abs=1e-10)
        assert goods[-1] == pytest.approx(1.0, abs=1e-10)
