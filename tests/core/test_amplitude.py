"""2-D subspace algebra: Q(φ,ϕ), rotations, Eq. (7) decomposition."""

import numpy as np
import pytest

from repro.core import (
    grover_rotation_matrix,
    initial_decomposition,
    initial_vector,
    q_matrix,
    reflection_about_initial,
    s_chi_matrix,
    state_after_iterations,
)
from repro.errors import ValidationError
from repro.qsim import is_unitary


class TestBuildingBlocks:
    def test_initial_vector(self):
        v = initial_vector(0.3)
        np.testing.assert_allclose(v, [np.sin(0.3), np.cos(0.3)])

    def test_s_chi_is_unitary(self):
        assert is_unitary(s_chi_matrix(0.7))

    def test_s_chi_phases_good_axis_only(self):
        mat = s_chi_matrix(np.pi / 3)
        assert mat[0, 0] == pytest.approx(np.exp(1j * np.pi / 3))
        assert mat[1, 1] == 1.0

    def test_reflection_is_unitary(self):
        assert is_unitary(reflection_about_initial(0.4, 1.1))

    def test_reflection_at_pi_is_householder(self):
        theta = 0.5
        u = initial_vector(theta)
        expected = np.eye(2) - 2 * np.outer(u, u.conj())
        np.testing.assert_allclose(
            reflection_about_initial(theta, np.pi), expected, atol=1e-12
        )

    def test_q_is_unitary_for_any_angles(self):
        for theta in (0.1, 0.7, 1.4):
            for varphi in (0.0, 0.9, np.pi):
                for phi in (0.3, np.pi, 5.0):
                    assert is_unitary(q_matrix(theta, varphi, phi))


class TestGroverRotation:
    def test_q_pi_pi_is_rotation_by_two_theta(self):
        theta = 0.37
        np.testing.assert_allclose(
            q_matrix(theta, np.pi, np.pi), grover_rotation_matrix(theta), atol=1e-12
        )

    def test_iterating_advances_angle(self):
        theta = 0.21
        v = initial_vector(theta)
        rot = q_matrix(theta, np.pi, np.pi)
        for reps in range(5):
            expected = state_after_iterations(theta, reps)
            np.testing.assert_allclose(v, expected, atol=1e-12)
            v = rot @ v

    def test_state_after_iterations_rejects_negative(self):
        with pytest.raises(ValidationError):
            state_after_iterations(0.3, -1)


class TestInitialDecomposition:
    def test_overlap_is_m_over_nu_n(self, tiny_db):
        decomp = initial_decomposition(tiny_db)
        assert decomp.overlap == pytest.approx(5 / 16)
        assert decomp.theta == pytest.approx(np.arcsin(np.sqrt(5 / 16)))

    def test_good_state_is_target(self, tiny_db):
        decomp = initial_decomposition(tiny_db)
        expected = np.sqrt(np.array([2, 2, 0, 1]) / 5)
        np.testing.assert_allclose(decomp.good, expected, atol=1e-12)

    def test_bad_state_is_capacity_residual(self, tiny_db):
        decomp = initial_decomposition(tiny_db)
        residual = 4 - np.array([2, 2, 0, 1])
        expected = np.sqrt(residual / residual.sum())
        np.testing.assert_allclose(decomp.bad, expected, atol=1e-12)

    def test_good_and_bad_normalized(self, small_db):
        decomp = initial_decomposition(small_db)
        assert np.linalg.norm(decomp.good) == pytest.approx(1.0)
        assert np.linalg.norm(decomp.bad) == pytest.approx(1.0)

    def test_equation_seven_reassembles(self, small_db):
        """√a·good ⊕ √(1−a)·bad must equal D|π,0⟩ componentwise."""
        decomp = initial_decomposition(small_db)
        counts = small_db.joint_counts
        nu, n_univ = small_db.nu, small_db.universe
        d_pi_good = np.sqrt(counts / (nu * n_univ))
        d_pi_bad = np.sqrt((nu - counts) / (nu * n_univ))
        np.testing.assert_allclose(
            np.sqrt(decomp.overlap) * decomp.good.real, d_pi_good, atol=1e-12
        )
        np.testing.assert_allclose(
            np.sqrt(1 - decomp.overlap) * decomp.bad.real, d_pi_bad, atol=1e-12
        )

    def test_full_capacity_database_has_no_bad_part(self):
        from repro.database import DistributedDatabase, Multiset

        db = DistributedDatabase.from_shards(
            [Multiset(3, {0: 2, 1: 2, 2: 2})], nu=2
        )
        decomp = initial_decomposition(db)
        assert decomp.overlap == pytest.approx(1.0)
        np.testing.assert_allclose(decomp.bad, 0.0, atol=1e-12)

    def test_empty_database_rejected(self):
        from repro.database import DistributedDatabase, Multiset

        db = DistributedDatabase.from_shards([Multiset.empty(3)], nu=1)
        with pytest.raises(ValidationError):
            initial_decomposition(db)
