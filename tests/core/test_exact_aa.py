"""Zero-error amplitude amplification: the BHMT Theorem 4 schedule."""

import numpy as np
import pytest

from repro.core import (
    grover_reps_for,
    plain_grover_plan,
    solve_plan,
    success_probability,
)
from repro.errors import PlanInfeasibleError


class TestGroverReps:
    def test_formula(self):
        theta = 0.1
        assert grover_reps_for(theta) == int(np.floor(np.pi / (4 * theta) - 0.5))

    def test_clamped_at_zero(self):
        assert grover_reps_for(1.5) == 0

    def test_positive_theta_required(self):
        with pytest.raises(PlanInfeasibleError):
            grover_reps_for(0.0)


class TestSolvePlan:
    @pytest.mark.parametrize(
        "overlap",
        [0.001, 0.003, 0.01, 0.02, 0.05, 0.1, 0.2, 0.25, 0.3, 0.5, 0.7, 0.9, 0.99],
    )
    def test_zero_error_for_many_overlaps(self, overlap):
        plan = solve_plan(overlap)
        assert plan.residual_bad_amplitude() < 1e-11
        assert success_probability(plan) == pytest.approx(1.0, abs=1e-10)

    def test_overlap_one_needs_nothing(self):
        plan = solve_plan(1.0)
        assert plan.grover_reps == 0
        assert not plan.needs_final
        assert plan.d_applications == 1

    def test_resonant_theta_skips_final(self):
        # θ = π/6: (2·1+1)θ = π/2 exactly → plain Grover lands exactly.
        overlap = np.sin(np.pi / 6) ** 2
        plan = solve_plan(overlap)
        assert plan.grover_reps == 1
        assert not plan.needs_final
        assert plan.residual_bad_amplitude() < 1e-12

    def test_invalid_overlaps_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(PlanInfeasibleError):
                solve_plan(bad)

    def test_iteration_counts(self):
        plan = solve_plan(0.01)
        expected_m = int(np.floor(np.pi / (4 * np.arcsin(0.1)) - 0.5))
        assert plan.grover_reps == expected_m
        assert plan.iterations == expected_m + int(plan.needs_final)
        assert plan.d_applications == 1 + 2 * plan.iterations

    def test_scaling_with_overlap(self):
        # m ≈ (π/4)/√a: quartering the overlap doubles the reps.
        m_small = solve_plan(0.0025).grover_reps
        m_large = solve_plan(0.01).grover_reps
        assert m_small == pytest.approx(2 * m_large, abs=2)

    def test_angles_reported_when_final_needed(self):
        plan = solve_plan(0.013)
        if plan.needs_final:
            assert plan.final_varphi is not None
            assert plan.final_phi is not None
            assert 0 < plan.final_phi <= np.pi + 1e-12


class TestPlainGroverBaseline:
    def test_plain_is_generally_inexact(self):
        # Pick an overlap where (2m+1)θ is far from π/2.
        inexact = 0
        for overlap in (0.011, 0.017, 0.023, 0.037, 0.06):
            plan = plain_grover_plan(overlap)
            if 1.0 - success_probability(plan) > 1e-6:
                inexact += 1
        assert inexact >= 3

    def test_plain_never_beats_exact(self):
        for overlap in (0.01, 0.05, 0.2):
            exact = solve_plan(overlap)
            plain = plain_grover_plan(overlap)
            assert success_probability(plain) <= success_probability(exact) + 1e-12

    def test_plain_success_still_high(self):
        # Rounding to nearest m̃ keeps failure ≤ sin²(2θ) — check ballpark.
        for overlap in (0.01, 0.05):
            plan = plain_grover_plan(overlap)
            assert success_probability(plan) > 0.9

    def test_invalid_overlap(self):
        with pytest.raises(PlanInfeasibleError):
            plain_grover_plan(0.0)


class TestFinalState2D:
    def test_final_state_is_good_axis(self):
        plan = solve_plan(0.07)
        final = plan.final_state_2d()
        assert abs(final[0]) == pytest.approx(1.0, abs=1e-10)
        assert abs(final[1]) == pytest.approx(0.0, abs=1e-10)

    def test_final_state_without_final_step(self):
        plan = plain_grover_plan(0.07)
        final = plan.final_state_2d()
        x = (2 * plan.grover_reps + 1) * plan.theta
        np.testing.assert_allclose(final, [np.sin(x), np.cos(x)], atol=1e-12)
