"""The fused Lemma 4.2 kernel: 2 gathers per ``D``, bit-identical state.

Cyclic shifts commute and add, so the ``O_1…O_n`` pass (and its inverse)
collapses to one vectorized gather by ``Σ_j c_ij mod (ν+1)`` — a basis
permutation, hence *exactly* equal amplitudes, with the ledger still
charging the honest per-machine calls in Lemma 4.2's order.
"""

import numpy as np
import pytest

from repro.core import OracleDistributingOperator, SequentialSampler
from repro.database import QueryLedger
from repro.qsim import RegisterLayout, StateVector


def random_state(db, rng):
    layout = RegisterLayout.of(i=db.universe, s=db.nu + 1, w=2)
    amps = rng.normal(size=layout.shape) + 1j * rng.normal(size=layout.shape)
    amps /= np.linalg.norm(amps)
    return StateVector.from_array(layout, amps)


class TestFusedEquality:
    @pytest.mark.parametrize("adjoint", [False, True])
    def test_bit_identical_to_unfused(self, small_db, rng, adjoint):
        state_fused = random_state(small_db, rng)
        state_plain = StateVector.from_array(
            state_fused.layout, state_fused.as_array().copy()
        )
        OracleDistributingOperator(small_db, fuse_gathers=True).apply(
            state_fused, adjoint=adjoint
        )
        OracleDistributingOperator(small_db, fuse_gathers=False).apply(
            state_plain, adjoint=adjoint
        )
        # A permutation composition, not a float rearrangement: exact.
        np.testing.assert_array_equal(
            state_fused.as_array(), state_plain.as_array()
        )

    def test_ledgers_identical(self, small_db, rng):
        fused_ledger = QueryLedger(small_db.n_machines)
        plain_ledger = QueryLedger(small_db.n_machines)
        state = random_state(small_db, rng)
        other = StateVector.from_array(state.layout, state.as_array().copy())
        OracleDistributingOperator(
            small_db, ledger=fused_ledger, fuse_gathers=True
        ).apply(state)
        OracleDistributingOperator(
            small_db, ledger=plain_ledger, fuse_gathers=False
        ).apply(other)
        assert fused_ledger.summary() == plain_ledger.summary()
        # The Lemma 4.2 cost: one forward + one adjoint call per machine.
        assert fused_ledger.per_machine() == [2] * small_db.n_machines

    def test_fused_is_default(self, small_db):
        assert OracleDistributingOperator(small_db).fuse_gathers is True

    def test_sampler_stays_exact_and_costed(self, small_db):
        result = SequentialSampler(small_db, backend="oracles").run()
        assert result.exact
        assert result.sequential_queries == (
            2 * small_db.n_machines * result.plan.d_applications
        )


class TestFusedRestriction:
    def test_active_machine_restriction(self):
        from repro.database import DistributedDatabase, Multiset

        shards = [
            Multiset(8, {0: 1, 1: 1}),
            Multiset.empty(8),
            Multiset(8, {5: 1}),
        ]
        db = DistributedDatabase.from_shards(shards, nu=2)
        ledger = QueryLedger(db.n_machines)
        op = OracleDistributingOperator(
            db, ledger=ledger, active_machines=[0, 2], fuse_gathers=True
        )
        state = StateVector.zero(RegisterLayout.of(i=8, s=3, w=2))
        op.apply(state)
        assert ledger.per_machine() == [2, 0, 2]

    def test_register_checks_still_enforced(self, small_db):
        from repro.errors import ValidationError

        op = OracleDistributingOperator(small_db, fuse_gathers=True)
        bad = StateVector.zero(
            RegisterLayout.of(i=small_db.universe, s=small_db.nu + 3, w=2)
        )
        with pytest.raises(ValidationError, match="count register"):
            op.apply(bad)
