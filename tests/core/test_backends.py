"""The sampler-backend registry and cross-backend equivalence.

The registry is the single dispatch point for simulation substrates; the
equivalence suite is the contract that lets any of them stand in for the
paper's circuit: over a randomized grid of ``(N, M, ν, n)`` instances,
every backend must report the same fidelity, the same output
distribution, and the same query ledger.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_BACKENDS,
    ParallelSampler,
    SamplerBackend,
    SequentialSampler,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
    sample_parallel,
    sample_sequential,
)
from repro.core.backends import _REGISTRY
from repro.database import DistributedDatabase, partition, zipf_dataset
from repro.errors import SimulationLimitError, ValidationError
from repro.utils.rng import as_generator


def random_instance(rng, universe, total, n_machines, nu_headroom=0):
    dataset = zipf_dataset(universe, total, exponent=1.1, rng=rng)
    db = partition(dataset, n_machines, strategy="round_robin", rng=rng)
    if nu_headroom:
        db = db.with_nu(db.nu + nu_headroom)
    return db


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names("sequential") == ("classes", "oracles", "subspace")
        assert backend_names("parallel") == ("classes", "dense", "synced")
        assert set(backend_names()) == {"classes", "dense", "oracles", "subspace", "synced"}

    def test_defaults_are_registered(self):
        for model, name in DEFAULT_BACKENDS.items():
            assert name in backend_names(model)

    def test_resolve_unknown_name(self):
        with pytest.raises(ValidationError, match="choose from"):
            resolve_backend("gpu", "sequential")

    def test_resolve_wrong_model(self):
        # "dense" exists, but only for the parallel model.
        with pytest.raises(ValidationError):
            resolve_backend("dense", "sequential")
        with pytest.raises(ValidationError):
            resolve_backend("oracles", "parallel")

    def test_resolve_unknown_model(self):
        with pytest.raises(ValidationError, match="unknown model"):
            resolve_backend("oracles", "streaming")

    def test_create_backend_rejects_model_mismatch_at_init(self, small_db):
        cls = resolve_backend("oracles", "sequential")
        with pytest.raises(ValidationError):
            cls(small_db, "parallel")

    def test_third_party_registration(self, small_db):
        @register_backend
        class EchoBackend(SamplerBackend):
            name = "echo-test"
            models = ("sequential",)

            def initial_state(self):  # pragma: no cover - never run
                raise NotImplementedError

            def d_applier(self, ledger):  # pragma: no cover - never run
                raise NotImplementedError

        try:
            assert "echo-test" in backend_names("sequential")
            assert isinstance(
                create_backend("echo-test", small_db, "sequential"), EchoBackend
            )
            # The samplers resolve purely by name, so construction works too.
            SequentialSampler(small_db, backend="echo-test")
        finally:
            _REGISTRY.pop("echo-test")

    def test_registration_validates_models(self):
        with pytest.raises(ValidationError):

            @register_backend
            class BadBackend(SamplerBackend):
                name = "bad-test"
                models = ("quantum-postal",)

                def initial_state(self):  # pragma: no cover
                    raise NotImplementedError

                def d_applier(self, ledger):  # pragma: no cover
                    raise NotImplementedError


class TestSequentialEquivalence:
    """classes vs subspace vs oracles on a randomized (N, M, ν, n) grid."""

    GRID = [
        # (universe, total, n_machines, nu_headroom)
        (8, 12, 1, 0),
        (12, 10, 2, 1),
        (16, 24, 3, 0),
        (24, 9, 2, 2),
        (32, 40, 4, 0),
    ]

    @pytest.mark.parametrize("universe,total,n_machines,headroom", GRID)
    def test_fidelity_distribution_and_ledger_agree(
        self, universe, total, n_machines, headroom
    ):
        rng = as_generator(1000 + universe + total)
        db = random_instance(rng, universe, total, n_machines, headroom)
        results = {
            b: sample_sequential(db, backend=b)
            for b in ("oracles", "subspace", "classes")
        }
        reference = results["oracles"]
        assert reference.exact
        for name, result in results.items():
            assert result.fidelity == pytest.approx(1.0, abs=1e-9), name
            np.testing.assert_allclose(
                result.output_probabilities,
                reference.output_probabilities,
                atol=1e-9,
                err_msg=name,
            )
            assert result.ledger.per_machine() == reference.ledger.per_machine(), name
            assert result.sequential_queries == reference.sequential_queries, name
            assert result.parallel_rounds == 0, name

    def test_classes_final_amplitudes_match_subspace(self, small_db):
        r_subspace = sample_sequential(small_db, backend="subspace")
        r_classes = sample_sequential(small_db, backend="classes")
        np.testing.assert_allclose(
            r_classes.final_state.to_statevector().as_array(),
            r_subspace.final_state.as_array(),
            atol=1e-10,
        )

    def test_classes_capacity_aware_schedule(self):
        # One empty machine (κ = 0): the capacity-aware path skips it.
        db = DistributedDatabase.from_count_matrix(
            np.array([[2, 1, 0, 0], [0, 0, 0, 0]]), nu=3
        )
        full = SequentialSampler(db, backend="classes").run()
        skipping = SequentialSampler(
            db, backend="classes", skip_zero_capacity=True
        ).run()
        assert skipping.exact
        assert skipping.ledger.machine_queries(1) == 0
        assert skipping.sequential_queries < full.sequential_queries


class TestParallelEquivalence:
    """classes vs synced (and dense on tiny instances)."""

    GRID = [
        (8, 12, 2, 0),
        (12, 10, 3, 1),
        (16, 24, 2, 0),
        (24, 16, 4, 0),
    ]

    @pytest.mark.parametrize("universe,total,n_machines,headroom", GRID)
    def test_classes_matches_synced(self, universe, total, n_machines, headroom):
        rng = as_generator(2000 + universe + total)
        db = random_instance(rng, universe, total, n_machines, headroom)
        r_synced = sample_parallel(db, backend="synced")
        r_classes = sample_parallel(db, backend="classes")
        assert r_classes.fidelity == pytest.approx(1.0, abs=1e-9)
        np.testing.assert_allclose(
            r_classes.output_probabilities, r_synced.output_probabilities, atol=1e-9
        )
        assert r_classes.parallel_rounds == r_synced.parallel_rounds
        assert r_classes.ledger.per_machine() == r_synced.ledger.per_machine()

    def test_classes_matches_dense_on_tiny(self, tiny_db):
        r_dense = sample_parallel(tiny_db, backend="dense")
        r_classes = sample_parallel(tiny_db, backend="classes")
        np.testing.assert_allclose(
            r_classes.output_probabilities, r_dense.output_probabilities, atol=1e-10
        )
        assert r_classes.parallel_rounds == r_dense.parallel_rounds


class TestMillionElementScale:
    """The ISSUE acceptance instance: N = 10⁶, M = 10³, ν = 8.

    Dense layouts need dimension N·(ν+1)·2 = 1.8·10⁷ > 2²⁴ and refuse;
    the classes backend completes with fidelity 1 and honest ledgers.
    """

    @pytest.fixture(scope="class")
    def big_db(self):
        n_machines, universe = 2, 10**6
        counts = np.zeros((n_machines, universe), dtype=np.int64)
        counts[0, :125] = 4
        counts[1, :125] = 4  # joint count 8 on 125 keys → M = 1000
        return DistributedDatabase.from_count_matrix(counts, nu=8)

    def test_dense_paths_refuse(self, big_db):
        with pytest.raises(SimulationLimitError):
            SequentialSampler(big_db, backend="oracles").run()
        with pytest.raises(SimulationLimitError):
            ParallelSampler(big_db, backend="synced").run()

    def test_sequential_classes_completes_exactly(self, big_db):
        sampler = SequentialSampler(big_db, backend="classes")
        result = sampler.run()
        assert result.exact
        # Honest Theorem 4.3 bill: 2n per D application.
        assert result.sequential_queries == sampler.predicted_queries()
        assert (
            result.sequential_queries
            == 2 * big_db.n_machines * result.plan.d_applications
        )
        probs = result.output_probabilities
        assert probs.shape == (10**6,)
        assert probs[:125].sum() == pytest.approx(1.0, abs=1e-9)

    def test_parallel_classes_completes_exactly(self, big_db):
        sampler = ParallelSampler(big_db, backend="classes")
        result = sampler.run()
        assert result.exact
        # Honest Theorem 4.5 bill: 4 rounds per D application.
        assert result.parallel_rounds == sampler.predicted_rounds()
        assert result.parallel_rounds == 4 * result.plan.d_applications

    def test_state_memory_is_nu_not_n(self, big_db):
        state = SequentialSampler(big_db, backend="classes").initial_state()
        assert state.class_amplitudes().size == (big_db.nu + 1) * 2


class TestCertification:
    def test_classes_run_passes_full_certificate(self, small_db):
        from repro.analysis import certify_run

        result = sample_sequential(small_db, backend="classes")
        certificate = certify_run(result, small_db, rng=0)
        assert certificate.valid, certificate.render()

    def test_classes_parallel_run_passes_full_certificate(self, small_db):
        from repro.analysis import certify_run

        result = sample_parallel(small_db, backend="classes")
        certificate = certify_run(result, small_db, rng=0)
        assert certificate.valid, certificate.render()
