"""Oblivious query schedules."""

import pytest

from repro.core import QuerySchedule, ScheduleEntry
from repro.errors import ValidationError


class TestScheduleEntry:
    def test_oracle_entry_needs_machine(self):
        with pytest.raises(ValidationError):
            ScheduleEntry("oracle", None, False)

    def test_parallel_entry_forbids_machine(self):
        with pytest.raises(ValidationError):
            ScheduleEntry("parallel", 0, False)

    def test_bad_kind(self):
        with pytest.raises(ValidationError):
            ScheduleEntry("telepathy", 0, False)


class TestSequentialSchedule:
    def test_lemma_42_sandwich_structure(self):
        schedule = QuerySchedule.sequential_from_plan(n_machines=3, d_applications=1)
        machines = [e.machine for e in schedule]
        adjoints = [e.adjoint for e in schedule]
        assert machines == [0, 1, 2, 2, 1, 0]
        assert adjoints == [False, False, False, True, True, True]

    def test_counts(self):
        schedule = QuerySchedule.sequential_from_plan(n_machines=2, d_applications=5)
        assert schedule.sequential_queries() == 2 * 2 * 5
        assert schedule.parallel_rounds() == 0

    def test_per_machine_count(self):
        schedule = QuerySchedule.sequential_from_plan(n_machines=4, d_applications=3)
        for j in range(4):
            assert schedule.machine_queries(j) == 2 * 3

    def test_machine_bounds_validated(self):
        with pytest.raises(ValidationError):
            QuerySchedule(1, [ScheduleEntry("oracle", 1, False)])


class TestParallelSchedule:
    def test_lemma_44_round_pattern(self):
        schedule = QuerySchedule.parallel_from_plan(n_machines=3, d_applications=1)
        assert len(schedule) == 4
        assert [e.adjoint for e in schedule] == [False, True, False, True]
        assert all(e.kind == "parallel" for e in schedule)

    def test_counts(self):
        schedule = QuerySchedule.parallel_from_plan(n_machines=3, d_applications=7)
        assert schedule.parallel_rounds() == 28
        assert schedule.sequential_queries() == 0

    def test_machine_queries_counts_rounds(self):
        schedule = QuerySchedule.parallel_from_plan(n_machines=3, d_applications=2)
        assert schedule.machine_queries(1) == 8


class TestFingerprint:
    def test_equal_schedules_equal_fingerprints(self):
        a = QuerySchedule.sequential_from_plan(2, 3)
        b = QuerySchedule.sequential_from_plan(2, 3)
        assert a == b
        assert a.fingerprint() == b.fingerprint()
        assert hash(a) == hash(b)

    def test_different_d_count_differs(self):
        a = QuerySchedule.sequential_from_plan(2, 3)
        b = QuerySchedule.sequential_from_plan(2, 4)
        assert a.fingerprint() != b.fingerprint()

    def test_model_changes_fingerprint(self):
        a = QuerySchedule.sequential_from_plan(2, 3)
        b = QuerySchedule.parallel_from_plan(2, 3)
        assert a.fingerprint() != b.fingerprint()

    def test_machine_count_changes_fingerprint(self):
        a = QuerySchedule.parallel_from_plan(2, 3)
        b = QuerySchedule.parallel_from_plan(3, 3)
        assert a.fingerprint() != b.fingerprint()
