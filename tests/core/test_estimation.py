"""Amplitude estimation (the unknown-M extension)."""

import numpy as np
import pytest

from repro.core import (
    bhmt_error_bound,
    estimate_overlap,
    outcome_to_overlap,
    phase_register_distribution,
    sample_with_estimated_m,
    solve_plan,
)
from repro.database import DistributedDatabase, Multiset
from repro.errors import ValidationError


@pytest.fixture
def db():
    return DistributedDatabase.from_shards(
        [Multiset(64, {0: 1, 3: 1}), Multiset(64, {9: 2})], nu=4
    )


class TestPhaseDistribution:
    def test_is_a_distribution(self):
        probs = phase_register_distribution(0.3, precision_bits=6)
        assert probs.shape == (64,)
        assert probs.min() >= 0
        assert probs.sum() == pytest.approx(1.0)

    def test_peaks_near_encoded_phase(self):
        # Eigenphases ±2θ ⇒ phase-register peaks near P·θ/π and P(1 − θ/π).
        theta = 0.4
        p_bits = 8
        p_dim = 2**p_bits
        probs = phase_register_distribution(theta, p_bits)
        peak = int(np.argmax(probs))
        target1 = theta / np.pi * p_dim
        target2 = (1 - theta / np.pi) * p_dim
        assert min(abs(peak - target1), abs(peak - target2)) <= 1.5

    def test_exact_phase_gives_deterministic_outcome(self):
        # θ = π·k/P: the eigenphase is exactly representable.
        p_bits = 5
        p_dim = 2**p_bits
        theta = np.pi * 4 / p_dim
        probs = phase_register_distribution(theta, p_bits)
        support = np.flatnonzero(probs > 1e-9)
        assert set(support.tolist()) <= {4, p_dim - 4}


class TestDecoding:
    def test_outcome_zero_is_zero_overlap(self):
        assert outcome_to_overlap(0, 5) == 0.0

    def test_symmetry(self):
        p_bits = 6
        p_dim = 2**p_bits
        for y in (1, 7, 13):
            assert outcome_to_overlap(y, p_bits) == pytest.approx(
                outcome_to_overlap(p_dim - y, p_bits)
            )

    def test_range_checked(self):
        with pytest.raises(ValidationError):
            outcome_to_overlap(64, 6)


class TestEstimateOverlap:
    def test_estimate_converges_with_precision(self, db):
        true_a = db.initial_overlap()
        errors = []
        for p_bits in (4, 7, 10):
            est = estimate_overlap(db, precision_bits=p_bits, shots=9, rng=0)
            errors.append(abs(est.a_hat - true_a))
        assert errors[2] < errors[0]
        assert errors[2] < 1e-3

    def test_error_within_bhmt_bound_usually(self, db):
        true_a = db.initial_overlap()
        hits = 0
        for seed in range(10):
            est = estimate_overlap(db, precision_bits=8, shots=1, rng=seed)
            if abs(est.a_hat - true_a) <= bhmt_error_bound(true_a, 8):
                hits += 1
        # Per-shot guarantee is ≥ 8/π² ≈ 0.81; ten seeds should mostly hit.
        assert hits >= 7

    def test_query_accounting(self, db):
        est = estimate_overlap(db, precision_bits=5, shots=3, rng=0)
        p_dim = 2**5
        assert est.grover_applications == p_dim - 1
        assert est.sequential_queries == 3 * 2 * db.n_machines * (2 * (p_dim - 1) + 1)
        assert est.parallel_rounds == 3 * 4 * (2 * (p_dim - 1) + 1)

    def test_m_hat_rounds_to_true_m(self, db):
        est = estimate_overlap(db, precision_bits=9, shots=9, rng=1)
        assert est.m_hat_rounded() == db.total_count

    def test_heisenberg_scaling(self, db):
        """Doubling P should roughly halve the error bound."""
        b1 = bhmt_error_bound(db.initial_overlap(), 6)
        b2 = bhmt_error_bound(db.initial_overlap(), 7)
        assert b2 == pytest.approx(b1 / 2, rel=0.2)

    def test_empty_database_rejected(self):
        empty = DistributedDatabase.from_shards([Multiset.empty(8)], nu=1)
        with pytest.raises(ValidationError):
            estimate_overlap(empty, precision_bits=4)


class TestEndToEndUnknownM:
    def test_good_precision_recovers_exact_sampling(self, db):
        est, result = sample_with_estimated_m(db, precision_bits=9, shots=9, rng=1)
        assert est.m_hat_rounded() == db.total_count
        assert result.fidelity > 0.995

    def test_coarse_precision_degrades_gracefully(self, db):
        est, result = sample_with_estimated_m(db, precision_bits=4, shots=3, rng=3)
        # Still a state, still accounted — just not exact.
        assert 0.0 <= result.fidelity <= 1.0
        assert result.sequential_queries == result.schedule.sequential_queries()

    def test_planned_with_estimate_not_truth(self, db):
        est, result = sample_with_estimated_m(db, precision_bits=8, shots=9, rng=0)
        # The executed plan's overlap is the clamped estimate, not true a.
        assert result.plan.overlap == pytest.approx(
            min(max(est.a_hat, 1.0 / (db.nu * db.universe)), 1.0)
        )

    def test_fidelity_matches_mismatch_algebra(self, db):
        """With plan overlap a' ≠ a, fidelity = sin²((2m+1)θ)-style value —
        check against the 2-D prediction computed from the real θ."""
        est, result = sample_with_estimated_m(db, precision_bits=6, shots=5, rng=2)
        theta_true = np.arcsin(np.sqrt(db.initial_overlap()))
        plan = result.plan
        v = np.array([np.sin(theta_true), np.cos(theta_true)], dtype=complex)
        from repro.core import q_matrix

        for _ in range(plan.grover_reps):
            v = q_matrix(theta_true, np.pi, np.pi) @ v
        if plan.needs_final:
            v = q_matrix(theta_true, plan.final_varphi, plan.final_phi) @ v
        assert result.fidelity == pytest.approx(abs(v[0]) ** 2, abs=1e-9)
