"""Property-based checks of the zero-error plan solver (hypothesis).

The solver must land *exactly* for every feasible overlap — this is the
paper's zero-error claim, so we hammer it across the full (0, 1] range
including adversarial values near resonances and boundaries.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import q_matrix, solve_plan, state_after_iterations, success_probability

overlaps = st.floats(
    min_value=1e-4, max_value=1.0, exclude_min=False, allow_nan=False
)


@settings(max_examples=200, deadline=None)
@given(overlap=overlaps)
def test_plan_always_lands_exactly(overlap):
    plan = solve_plan(overlap)
    assert plan.residual_bad_amplitude() < 1e-10
    assert abs(success_probability(plan) - 1.0) < 1e-9


@settings(max_examples=100, deadline=None)
@given(overlap=overlaps)
def test_d_applications_formula(overlap):
    plan = solve_plan(overlap)
    assert plan.d_applications == 1 + 2 * (plan.grover_reps + int(plan.needs_final))


@settings(max_examples=100, deadline=None)
@given(overlap=overlaps)
def test_reps_within_bhmt_envelope(overlap):
    plan = solve_plan(overlap)
    theta = plan.theta
    # m̃ = π/(4θ) − 1/2 and m = ⌊m̃⌋ ⇒ (2m+1)θ ∈ [π/2 − 2θ, π/2].
    x = (2 * plan.grover_reps + 1) * theta
    assert x <= np.pi / 2 + 1e-9
    assert x >= np.pi / 2 - 2 * theta - 1e-9


@settings(max_examples=100, deadline=None)
@given(overlap=overlaps)
def test_total_iterations_scale(overlap):
    plan = solve_plan(overlap)
    # iterations ≤ (π/4)/θ + 1 ≤ (π/4)·(π/2)/√a + 1 (θ ≥ 2θ/π·(π/2), and
    # sin θ ≥ 2θ/π on [0, π/2] gives θ ≥ ... use the crude safe bound).
    bound = (np.pi / 4) / plan.theta + 1
    assert plan.iterations <= bound + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    overlap=overlaps,
    varphi=st.floats(min_value=-np.pi, max_value=np.pi),
    phi=st.floats(min_value=-np.pi, max_value=np.pi),
)
def test_q_matrix_unitary_everywhere(overlap, varphi, phi):
    theta = float(np.arcsin(np.sqrt(overlap)))
    q = q_matrix(theta, varphi, phi)
    np.testing.assert_allclose(q.conj().T @ q, np.eye(2), atol=1e-10)


@settings(max_examples=100, deadline=None)
@given(overlap=overlaps, reps=st.integers(min_value=0, max_value=50))
def test_iterated_state_is_unit(overlap, reps):
    theta = float(np.arcsin(np.sqrt(overlap)))
    v = state_after_iterations(theta, reps)
    assert abs(np.linalg.norm(v) - 1.0) < 1e-12
