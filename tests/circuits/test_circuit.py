"""Circuit IR and the qubit statevector executor."""

import numpy as np
import pytest

from repro.circuits import CNOT, Circuit, Gate, H, X, basis_state
from repro.errors import ValidationError


class TestGateValidation:
    def test_matrix_arity_check(self):
        with pytest.raises(ValidationError):
            Gate("bad", (0, 1), np.eye(2))

    def test_duplicate_qubits(self):
        with pytest.raises(ValidationError):
            Gate("bad", (0, 0), np.eye(4))

    def test_dagger(self):
        g = Gate("S", (0,), np.diag([1, 1j]).astype(complex))
        np.testing.assert_allclose(g.dagger().matrix, np.diag([1, -1j]), atol=1e-12)


class TestCircuitConstruction:
    def test_append_range_checks(self):
        circuit = Circuit(2)
        with pytest.raises(ValidationError):
            circuit.add("X", X, 5)

    def test_extend_width_check(self):
        with pytest.raises(ValidationError):
            Circuit(2).extend(Circuit(3))

    def test_len_and_iter(self):
        circuit = Circuit(2).add("H", H, 0).add("CNOT", CNOT, 0, 1)
        assert len(circuit) == 2
        assert [g.name for g in circuit] == ["H", "CNOT"]


class TestExecution:
    def test_bell_state(self):
        circuit = Circuit(2).add("H", H, 0).add("CNOT", CNOT, 0, 1)
        out = circuit.run()
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_qubit0_is_most_significant(self):
        out = Circuit(2).add("X", X, 0).run()
        np.testing.assert_allclose(out, basis_state(2, 0b10), atol=1e-12)
        out = Circuit(2).add("X", X, 1).run()
        np.testing.assert_allclose(out, basis_state(2, 0b01), atol=1e-12)

    def test_cnot_direction(self):
        # control qubit 0, target qubit 1
        circuit = Circuit(2).add("CNOT", CNOT, 0, 1)
        np.testing.assert_allclose(
            circuit.run(basis_state(2, 0b10)), basis_state(2, 0b11), atol=1e-12
        )
        np.testing.assert_allclose(
            circuit.run(basis_state(2, 0b01)), basis_state(2, 0b01), atol=1e-12
        )

    def test_reversed_qubit_order_gate(self):
        # CNOT with control qubit 1, target qubit 0
        circuit = Circuit(2).add("CNOT", CNOT, 1, 0)
        np.testing.assert_allclose(
            circuit.run(basis_state(2, 0b01)), basis_state(2, 0b11), atol=1e-12
        )

    def test_run_copies_input(self):
        state = basis_state(1, 0)
        Circuit(1).add("X", X, 0).run(state)
        np.testing.assert_allclose(state, basis_state(1, 0))

    def test_norm_preserved(self, rng):
        circuit = Circuit(3)
        circuit.add("H", H, 0).add("CNOT", CNOT, 0, 2).add("H", H, 1)
        vec = rng.normal(size=8) + 1j * rng.normal(size=8)
        vec /= np.linalg.norm(vec)
        out = circuit.run(vec)
        assert np.linalg.norm(out) == pytest.approx(1.0)


class TestInverseAndUnitary:
    def test_inverse_undoes(self, rng):
        circuit = Circuit(3)
        circuit.add("H", H, 1).add("CNOT", CNOT, 1, 2).add("X", X, 0)
        vec = rng.normal(size=8) + 1j * rng.normal(size=8)
        vec /= np.linalg.norm(vec)
        roundtrip = circuit.inverse().run(circuit.run(vec))
        np.testing.assert_allclose(roundtrip, vec, atol=1e-12)

    def test_unitary_matches_kron(self):
        circuit = Circuit(2).add("H", H, 0)
        np.testing.assert_allclose(circuit.unitary(), np.kron(H, np.eye(2)), atol=1e-12)

    def test_unitary_of_cnot(self):
        circuit = Circuit(2).add("CNOT", CNOT, 0, 1)
        np.testing.assert_allclose(circuit.unitary(), CNOT, atol=1e-12)
