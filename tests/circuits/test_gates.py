"""Gate matrices: unitarity, known identities, controlled construction."""

import numpy as np
import pytest

from repro.circuits import (
    CNOT,
    CZ,
    H,
    NAMED_GATES,
    SWAP,
    TOFFOLI,
    X,
    Y,
    Z,
    controlled,
    mcx,
    phase,
    rx,
    ry,
    rz,
)
from repro.errors import ValidationError
from repro.qsim import is_permutation_matrix, is_unitary


class TestNamedGates:
    @pytest.mark.parametrize("name", sorted(NAMED_GATES))
    def test_all_unitary(self, name):
        assert is_unitary(NAMED_GATES[name])

    def test_pauli_algebra(self):
        np.testing.assert_allclose(X @ Y, 1j * Z, atol=1e-12)
        np.testing.assert_allclose(X @ X, np.eye(2), atol=1e-12)
        np.testing.assert_allclose(Y @ Y, np.eye(2), atol=1e-12)
        np.testing.assert_allclose(Z @ Z, np.eye(2), atol=1e-12)

    def test_hadamard_conjugates_x_to_z(self):
        np.testing.assert_allclose(H @ X @ H, Z, atol=1e-12)

    def test_cnot_from_controlled_x(self):
        np.testing.assert_allclose(controlled(X), CNOT, atol=1e-12)

    def test_cz_from_controlled_z(self):
        np.testing.assert_allclose(controlled(Z), CZ, atol=1e-12)

    def test_toffoli_from_double_control(self):
        np.testing.assert_allclose(controlled(controlled(X)), TOFFOLI, atol=1e-12)

    def test_swap_squares_to_identity(self):
        np.testing.assert_allclose(SWAP @ SWAP, np.eye(4), atol=1e-12)


class TestRotations:
    @pytest.mark.parametrize("maker", [rx, ry, rz, phase])
    def test_rotations_unitary(self, maker):
        for angle in (0.0, 0.3, np.pi, -1.7):
            assert is_unitary(maker(angle))

    def test_rotation_composition(self):
        np.testing.assert_allclose(ry(0.4) @ ry(0.5), ry(0.9), atol=1e-12)

    def test_rz_at_pi_is_z_up_to_phase(self):
        np.testing.assert_allclose(rz(np.pi), -1j * Z, atol=1e-12)


class TestMCX:
    def test_small_cases(self):
        np.testing.assert_allclose(mcx(0), X, atol=1e-12)
        np.testing.assert_allclose(mcx(1), CNOT, atol=1e-12)
        np.testing.assert_allclose(mcx(2), TOFFOLI, atol=1e-12)

    def test_is_permutation(self):
        assert is_permutation_matrix(mcx(3))

    def test_only_flips_all_ones_block(self):
        mat = mcx(3).real
        dim = 16
        for col in range(dim):
            row = int(np.argmax(mat[:, col]))
            if col >= dim - 2:  # controls all 1
                assert row == (col ^ 1)
            else:
                assert row == col


class TestControlled:
    def test_block_structure(self):
        u = ry(0.8)
        cu = controlled(u)
        np.testing.assert_allclose(cu[:2, :2], np.eye(2), atol=1e-12)
        np.testing.assert_allclose(cu[2:, 2:], u, atol=1e-12)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError):
            controlled(np.ones((2, 3)))
