"""Gate-compiled oracle arithmetic vs the register-level reference."""

import numpy as np
import pytest

from repro.circuits import (
    add_constant_circuit,
    basis_state,
    compiled_oracle_matches_kernel,
    gate_count_report,
    increment_circuit,
    increment_permutation,
    oracle_circuit_for_element,
    validate_bits_for_capacity,
)
from repro.errors import ValidationError
from repro.qsim import RegisterLayout, StateVector


class TestIncrement:
    @pytest.mark.parametrize("n_bits", [1, 2, 3, 4])
    def test_increment_every_value(self, n_bits):
        circuit = increment_circuit(n_bits)
        dim = 2**n_bits
        for value in range(dim):
            out = circuit.run(basis_state(n_bits, value))
            expected = basis_state(n_bits, (value + 1) % dim)
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_inverse_is_decrement(self):
        circuit = increment_circuit(3).inverse()
        out = circuit.run(basis_state(3, 0))
        np.testing.assert_allclose(out, basis_state(3, 7), atol=1e-12)


class TestAddConstant:
    @pytest.mark.parametrize("n_bits,constant", [(2, 0), (2, 3), (3, 5), (4, 9), (4, 15)])
    def test_matches_permutation(self, n_bits, constant):
        assert compiled_oracle_matches_kernel(n_bits, constant)

    def test_constant_reduced_mod_capacity(self):
        # +9 on 3 bits ≡ +1
        a = add_constant_circuit(3, 9).unitary()
        b = add_constant_circuit(3, 1).unitary()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_zero_constant_is_identity(self):
        np.testing.assert_allclose(
            add_constant_circuit(3, 0).unitary(), np.eye(8), atol=1e-12
        )

    def test_gate_count_polynomial(self):
        # Adding ν (the worst constant) must not need ν repetitions.
        report = gate_count_report(5, 31)
        assert report["total"] <= 5 * 6  # O(n²), far below 31 repetitions of +1


class TestCrossValidationWithRegisterKernel:
    @pytest.mark.parametrize("n_bits", [2, 3])
    def test_superposition_inputs_agree(self, n_bits, rng):
        """The compiled adder and apply_value_shift act identically on
        arbitrary superpositions of the counting register."""
        dim = 2**n_bits
        constant = 3 % dim
        vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        vec /= np.linalg.norm(vec)

        compiled = oracle_circuit_for_element(n_bits, constant).run(vec)

        layout = RegisterLayout.of(c=1, s=dim)
        state = StateVector.from_array(layout, vec.reshape(1, dim))
        state.apply_value_shift("c", "s", np.array([constant]))
        np.testing.assert_allclose(compiled, state.flat(), atol=1e-12)

    def test_permutation_reference(self):
        perm = increment_permutation(3, 5)
        np.testing.assert_array_equal(perm, (np.arange(8) + 5) % 8)


class TestCapacityValidation:
    def test_power_of_two_accepted(self):
        assert validate_bits_for_capacity(7) == 3
        assert validate_bits_for_capacity(1) == 1

    def test_non_power_rejected(self):
        with pytest.raises(ValidationError):
            validate_bits_for_capacity(6)
