"""The unified metrics registry: counters, gauges, bounded histograms."""

import json
import threading

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    """The canonical ceil-rank implementation (serve.stats re-exports it)."""

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_ceil_rank_on_exact_boundaries(self):
        # rank ⌈q·n⌉ from 1: q·n integral must NOT advance a rank — the
        # old int(q*n) indexing returned the (q·n+1)-th value here.
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0.2) == 10.0
        assert percentile(values, 0.4) == 20.0
        assert percentile(values, 0.6) == 30.0
        assert percentile(values, 0.8) == 40.0
        assert percentile(values, 1.0) == 50.0

    def test_fractional_ranks_round_up(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0.21) == 20.0
        assert percentile(values, 0.99) == 50.0

    def test_q_zero_clamps_to_first(self):
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_increments_do_not_drop(self):
        counter = Counter()
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_and_value(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(3.5)
        assert gauge.value == 3.5
        gauge.set(1)
        assert gauge.value == 1.0


class TestHistogram:
    def test_snapshot_fields(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == 2.0
        assert snap["max"] == 4.0

    def test_window_bounds_the_reservoir_but_not_the_lifetime(self):
        hist = Histogram(window=4)
        for value in range(100):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100  # lifetime
        assert snap["total"] == sum(range(100))
        assert snap["max"] == 99.0  # window = the 4 most recent
        assert snap["p50"] == 97.0

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["p99"] == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValidationError):
            registry.gauge("x")
        with pytest.raises(ValidationError):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_nested(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.depth").set(7)
        registry.histogram("c.lat").observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b.count"] == 2
        assert snap["a.depth"] == 7.0
        assert snap["c.lat"]["count"] == 1

    def test_json_line_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        record = json.loads(registry.json_line())
        assert record["kind"] == "metrics"
        assert record["metrics"]["n"] == 1
        assert record["metrics"] == registry.record()["metrics"]

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []

        def grab():
            for _ in range(200):
                seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, seen))) == 1
