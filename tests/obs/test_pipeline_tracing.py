"""End-to-end traces through every execution strategy and serving tier."""

import os

import pytest

import repro
from repro.analysis import InstanceSpec
from repro.api import SamplingRequest
from repro.database import WorkloadSpec
from repro.obs import disable_tracing, enable_tracing


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    disable_tracing()


def _spec() -> InstanceSpec:
    return InstanceSpec(
        workload=WorkloadSpec.of("zipf", universe=64, total=24),
        n_machines=2,
        nu=24,
    )


def _requests(count: int) -> list[SamplingRequest]:
    return [SamplingRequest(spec=_spec(), batchable=True) for _ in range(count)]


def _names(result) -> set[str]:
    return {record["name"] for record in result.trace}


class TestStrategyTraces:
    @pytest.mark.parametrize(
        "strategy,kwargs",
        [
            ("instance", {}),
            ("stacked", {}),
            ("fanout", {"jobs": 2}),
            ("served", {}),
        ],
    )
    def test_every_strategy_emits_stitched_per_request_traces(
        self, strategy, kwargs
    ):
        enable_tracing()
        results = repro.sample_many(
            _requests(4), rng=11, strategy=strategy, **kwargs
        )
        for result in results:
            assert result.trace, f"{strategy} left a request untraced"
            names = _names(result)
            assert "request" in names
            assert "build" in names
            assert "execute" in names
            roots = [r for r in result.trace if r["name"] == "request"]
            assert len(roots) == 1
            trace_id = roots[0]["trace_id"]
            # Every span in the trace either carries the trace_id or was
            # a batch span stitched in via its trace_ids attribute.
            for record in result.trace:
                listed = record.get("attributes", {}).get("trace_ids") or []
                assert record["trace_id"] == trace_id or trace_id in listed
            row = result.row()
            assert row["trace_id"] == trace_id
            assert "build" in row["trace_spans"]

    def test_plan_span_and_summary(self):
        enable_tracing()
        results = repro.sample_many(_requests(3), rng=5)
        summary = results.trace_summary()
        assert {"request", "build", "execute"} <= set(summary)
        assert summary["build"]["count"] == 3
        assert summary["request"]["max_s"] >= summary["request"]["p50_s"] >= 0

    def test_fanout_traces_cross_processes(self):
        enable_tracing()
        results = repro.sample_many(_requests(4), rng=11, strategy="fanout", jobs=2)
        pids = {
            record["pid"] for result in results for record in result.trace
        }
        assert any(pid != os.getpid() for pid in pids)

    def test_untraced_rows_carry_no_trace_columns(self):
        results = repro.sample_many(_requests(2), rng=3)
        for row in results.rows():
            assert "trace_id" not in row
            assert "trace_spans" not in row
        assert results[0].trace is None
        assert results.trace_summary() == {}


class TestServedTraces:
    def test_serve_front_door_traces_in_process_tier(self):
        enable_tracing()
        results = repro.serve(_requests(4), rng=9)
        for result in results:
            names = _names(result)
            assert {"request", "build", "execute"} <= names

    def test_sharded_tier_stitches_worker_process_spans(self):
        enable_tracing()
        results = repro.serve(_requests(6), rng=9, shards=2)
        dispatcher_pid = os.getpid()
        for result in results:
            names = _names(result)
            assert {"request", "dispatch", "build", "execute"} <= names
            worker_pids = {
                record["pid"]
                for record in result.trace
                if record["name"] in ("build", "execute", "marshal")
            }
            assert worker_pids, "no worker spans shipped home"
            assert all(pid != dispatcher_pid for pid in worker_pids)
            roots = [r for r in result.trace if r["name"] == "request"]
            assert len(roots) == 1

    def test_sharded_rows_match_untraced_run(self):
        plain = repro.serve(_requests(4), rng=13, shards=2)
        enable_tracing()
        traced = repro.serve(_requests(4), rng=13, shards=2)
        for row_a, row_b in zip(plain.rows(), traced.rows()):
            for key, value in row_a.items():
                if key != "wall_time_s":
                    assert row_b[key] == value, key
