"""Fork hygiene for process-global observability state.

The shard tier and the fanout pool fork workers; the ``os.register_at_fork``
hooks in :mod:`repro.obs` guarantee a child never inherits the parent's
counters, active tracer (with its open-span stack and sink handle) or
flight-recorder rings.  These tests fork for real and report the child's
observations back over a pipe — the regression REP003 exists to prevent.
"""

import json
import os

import pytest

from repro.obs.metrics import METRICS
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import disable_tracing, enable_tracing, get_tracer

requires_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="os.fork unavailable on this platform"
)


def _fork_and_probe(probe):
    """Fork; run ``probe()`` in the child; return its JSON result."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # the child: never return into pytest
        try:
            payload = json.dumps(probe()).encode()
            os.write(write_fd, payload)
        finally:
            os._exit(0)
    os.close(write_fd)
    chunks = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(read_fd)
    os.waitpid(pid, 0)
    return json.loads(b"".join(chunks).decode())


@requires_fork
class TestForkHygiene:
    def test_child_metrics_start_from_zero(self):
        METRICS.reset()
        METRICS.counter("fork_probe_events").inc(5)
        try:
            child = _fork_and_probe(lambda: METRICS.snapshot())
            assert child == {}
            # The parent's registry is untouched by the child's reset.
            assert METRICS.snapshot()["fork_probe_events"] == 5
        finally:
            METRICS.reset()

    def test_child_drops_inherited_tracer(self):
        tracer = enable_tracing()
        with tracer.span("parent-phase"):
            child = _fork_and_probe(lambda: {"tracing": get_tracer() is not None})
        try:
            assert child == {"tracing": False}
            # The parent tracer survives, sink intact.
            assert get_tracer() is tracer
        finally:
            disable_tracing()

    def test_child_ring_is_empty_parent_ring_intact(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("parent-incident", worker=3)
        child = _fork_and_probe(lambda: {"events": len(recorder)})
        assert child == {"events": 0}
        assert [entry["event"] for entry in recorder.dump()] == ["parent-incident"]

    def test_clear_empties_the_ring(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("one")
        recorder.record("two")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dump() == []
