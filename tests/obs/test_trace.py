"""Span tracer mechanics: nesting, stitching, sinks, flight recorder."""

import json
import os

import pytest

from repro.obs.recorder import FlightRecorder
from repro.obs.trace import (
    SpanContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    stitch,
    summarize,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    disable_tracing()


class TestDisabledFastPath:
    def test_span_is_a_shared_noop(self):
        assert not tracing_enabled()
        cm1 = span("plan", requests=3)
        cm2 = span("execute")
        assert cm1 is cm2  # one shared no-op context manager, no allocation
        with cm1 as opened:
            opened.set(backend="dense")  # swallowed
            assert opened.context is None

    def test_get_tracer_is_none(self):
        assert get_tracer() is None


class TestTracer:
    def test_start_finish_produces_a_record(self):
        tracer = Tracer()
        opened = tracer.start("build", label="x")
        record = tracer.finish(opened)
        assert record["kind"] == "span"
        assert record["name"] == "build"
        assert record["parent_id"] is None
        assert record["pid"] == os.getpid()
        assert record["duration_s"] >= 0.0
        assert record["attributes"] == {"label": "x"}
        assert tracer.spans() == [record]

    def test_nesting_links_parent_and_trace(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            with tracer.span("build") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        names = [record["name"] for record in tracer.spans()]
        assert names == ["build", "request"]  # finished inner-first

    def test_explicit_parent_crosses_context(self):
        tracer = Tracer()
        ctx = SpanContext(trace_id="t1", span_id="s1")
        record = tracer.finish(tracer.start("execute", parent=ctx))
        assert record["trace_id"] == "t1"
        assert record["parent_id"] == "s1"

    def test_context_sets_ambient_parent_without_a_span(self):
        tracer = Tracer()
        ctx = SpanContext(trace_id="t2", span_id="s2")
        with tracer.context(ctx):
            assert tracer.current() == ctx
            record = tracer.finish(tracer.start("pack"))
        assert record["trace_id"] == "t2"
        assert tracer.current() is None

    def test_emit_fabricates_a_finished_span(self):
        tracer = Tracer()
        ctx = SpanContext(trace_id="t3", span_id="s3")
        record = tracer.emit("pack", duration_s=0.25, parent=ctx, batch=8)
        assert record["duration_s"] == 0.25
        assert record["trace_id"] == "t3"
        assert record["attributes"] == {"batch": 8}

    def test_record_adopts_foreign_span_dicts(self):
        tracer = Tracer()
        shipped = {"kind": "span", "name": "execute", "trace_id": "t", "ts": 1.0}
        tracer.record(shipped)
        assert tracer.spans() == [shipped]

    def test_drain_pops_the_buffer(self):
        tracer = Tracer()
        tracer.finish(tracer.start("a"))
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.spans() == []
        assert tracer.drain() == []

    def test_buffer_is_bounded(self):
        tracer = Tracer(buffer_size=4)
        for index in range(10):
            tracer.finish(tracer.start(f"s{index}"))
        names = [record["name"] for record in tracer.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_sink_receives_every_span_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(path))
        tracer.finish(tracer.start("build"))
        tracer.drain()  # the sink keeps its copy regardless
        tracer.finish(tracer.start("execute"))
        tracer.write({"kind": "metrics", "metrics": {}})
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r.get("name", r["kind"]) for r in records] == [
            "build", "execute", "metrics",
        ]


class TestGlobalTracer:
    def test_enable_installs_and_disable_removes(self):
        tracer = enable_tracing()
        assert get_tracer() is tracer
        assert tracing_enabled()
        with span("plan", requests=1) as opened:
            opened.set(groups=1)
        assert tracer.spans()[0]["attributes"] == {"requests": 1, "groups": 1}
        disable_tracing()
        assert get_tracer() is None

    def test_reenable_replaces_the_tracer(self):
        first = enable_tracing()
        second = enable_tracing()
        assert first is not second
        assert get_tracer() is second


class TestStitch:
    def test_groups_by_trace_and_orders_by_ts(self):
        spans = [
            {"name": "b", "trace_id": "t1", "ts": 2.0},
            {"name": "a", "trace_id": "t1", "ts": 1.0},
            {"name": "c", "trace_id": "t2", "ts": 0.5},
        ]
        by_trace = stitch(spans)
        assert [s["name"] for s in by_trace["t1"]] == ["a", "b"]
        assert [s["name"] for s in by_trace["t2"]] == ["c"]

    def test_batch_spans_join_every_listed_trace(self):
        batch = {
            "name": "execute",
            "trace_id": "tbatch",
            "ts": 1.0,
            "attributes": {"trace_ids": ["t1", "t2"]},
        }
        by_trace = stitch([batch])
        assert set(by_trace) == {"tbatch", "t1", "t2"}
        assert all(traced == [batch] for traced in by_trace.values())

    def test_summarize_is_compact(self):
        text = summarize([
            {"name": "build", "duration_s": 0.001},
            {"name": "execute", "duration_s": 0.0205},
        ])
        assert text == "build:1.000ms;execute:20.500ms"


class TestFlightRecorder:
    def test_records_and_dumps(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record("route", index=0, shard=1)
        recorder.record("death", shard=1)
        dump = recorder.dump()
        assert len(recorder) == 2
        assert [entry["event"] for entry in dump] == ["route", "death"]
        assert dump[0]["shard"] == 1
        assert "ts" in dump[0]

    def test_ring_wraps_at_capacity(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", index=index)
        dump = recorder.dump()
        assert len(dump) == 4
        assert [entry["index"] for entry in dump] == [6, 7, 8, 9]


class TestWallClockIndependence:
    """Duration math is monotonic-only: a wall clock stepping backward
    (NTP, DST) must never produce negative durations or perturb traced
    sampling results relative to untraced ones."""

    def _backwards_clock(self):
        ticks = iter(range(10**6, 0, -1))  # strictly decreasing wall time

        def stepped_back():
            return float(next(ticks))

        return stepped_back

    def test_span_durations_survive_backwards_wall_clock(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod.time, "time", self._backwards_clock())
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        for record in tracer.spans():
            assert record["duration_s"] >= 0.0

    def test_traced_rows_bit_identical_under_backwards_wall_clock(
        self, monkeypatch
    ):
        from repro.api import SamplingRequest, sample
        from repro.database import partition, zipf_dataset

        def run():
            db = partition(zipf_dataset(16, 24, rng=3), 2)
            result = sample(SamplingRequest(database=db))
            assert result.sampling is not None
            return result.sampling.summary(), result.trace

        untraced, _ = run()

        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod.time, "time", self._backwards_clock())
        enable_tracing()
        try:
            traced, spans = run()
        finally:
            disable_tracing()

        # Bit-identical result rows: tracing (even under a broken wall
        # clock) must never touch the sampled physics.
        assert traced == untraced
        assert spans, "the traced run recorded no spans"
        assert all(record["duration_s"] >= 0.0 for record in spans)
