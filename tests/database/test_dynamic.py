"""Dynamic updates (Section 3 remark): streams, costs, validity."""

import pytest

from repro.database import (
    DistributedDatabase,
    Machine,
    Multiset,
    Update,
    UpdateStream,
    random_update_stream,
)
from repro.errors import ValidationError


@pytest.fixture
def db_with_headroom():
    machines = [
        Machine(Multiset(6, {0: 1, 1: 1}), capacity=4, name="m0"),
        Machine(Multiset(6, {2: 2}), capacity=4, name="m1"),
    ]
    return DistributedDatabase(machines, nu=8)


class TestUpdate:
    def test_kind_validated(self):
        with pytest.raises(ValidationError):
            Update(0, 0, "mutate")


class TestUpdateStream:
    def test_apply_next_mutates_database(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom,
            [Update(0, 3, "insert"), Update(1, 2, "delete")],
        )
        stream.apply_next()
        assert db_with_headroom.machine(0).multiplicity(3) == 1
        assert stream.pending == 1
        stream.apply_next()
        assert db_with_headroom.machine(1).multiplicity(2) == 1
        assert stream.pending == 0

    def test_apply_all(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom, [Update(0, 3, "insert")] * 3
        )
        assert stream.apply_all() == 3
        assert db_with_headroom.machine(0).multiplicity(3) == 3

    def test_unit_cost_per_update(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom,
            [Update(0, 3, "insert"), Update(0, 3, "insert"), Update(0, 3, "delete")],
        )
        stream.apply_all()
        assert stream.total_update_cost() == 3

    def test_machine_range_validated(self, db_with_headroom):
        with pytest.raises(ValidationError):
            UpdateStream(db_with_headroom, [Update(5, 0, "insert")])

    def test_element_range_validated(self, db_with_headroom):
        with pytest.raises(ValidationError):
            UpdateStream(db_with_headroom, [Update(0, 9, "insert")])

    def test_len_and_iter(self, db_with_headroom):
        updates = [Update(0, 3, "insert"), Update(0, 3, "delete")]
        stream = UpdateStream(db_with_headroom, updates)
        assert len(stream) == 2
        assert list(stream) == updates

    def test_apply_next_past_end_returns_zero(self, db_with_headroom):
        stream = UpdateStream(db_with_headroom, [Update(0, 3, "insert")])
        stream.apply_all()
        assert stream.apply_next() == 0


class TestRandomStream:
    def test_stream_always_valid(self, db_with_headroom):
        stream = random_update_stream(db_with_headroom, length=40, rng=0)
        assert len(stream) == 40
        stream.apply_all()
        db_with_headroom.validate()

    def test_deletes_only_present_elements(self, db_with_headroom):
        stream = random_update_stream(
            db_with_headroom, length=30, insert_probability=0.0, rng=1
        )
        stream.apply_all()  # would raise if it tried to remove an absent key
        db_with_headroom.validate()

    def test_inserts_respect_capacity(self, db_with_headroom):
        stream = random_update_stream(
            db_with_headroom, length=60, insert_probability=1.0, rng=2
        )
        stream.apply_all()
        db_with_headroom.validate()

    def test_seeded(self, db_with_headroom):
        a = random_update_stream(db_with_headroom, length=10, rng=7)
        fresh = DistributedDatabase(
            [m.replaced_shard(m.shard) for m in db_with_headroom.machines],
            nu=db_with_headroom.nu,
        )
        b = random_update_stream(fresh, length=10, rng=7)
        assert list(a) == list(b)
