"""Dynamic updates (Section 3 remark): streams, costs, validity."""

import pytest

from repro.database import (
    DistributedDatabase,
    Machine,
    Multiset,
    Update,
    UpdateStream,
    random_update_stream,
)
from repro.errors import ValidationError


@pytest.fixture
def db_with_headroom():
    machines = [
        Machine(Multiset(6, {0: 1, 1: 1}), capacity=4, name="m0"),
        Machine(Multiset(6, {2: 2}), capacity=4, name="m1"),
    ]
    return DistributedDatabase(machines, nu=8)


class TestUpdate:
    def test_kind_validated(self):
        with pytest.raises(ValidationError):
            Update(0, 0, "mutate")


class TestUpdateStream:
    def test_apply_next_mutates_database(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom,
            [Update(0, 3, "insert"), Update(1, 2, "delete")],
        )
        stream.apply_next()
        assert db_with_headroom.machine(0).multiplicity(3) == 1
        assert stream.pending == 1
        stream.apply_next()
        assert db_with_headroom.machine(1).multiplicity(2) == 1
        assert stream.pending == 0

    def test_apply_all(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom, [Update(0, 3, "insert")] * 3
        )
        assert stream.apply_all() == 3
        assert db_with_headroom.machine(0).multiplicity(3) == 3

    def test_unit_cost_per_update(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom,
            [Update(0, 3, "insert"), Update(0, 3, "insert"), Update(0, 3, "delete")],
        )
        stream.apply_all()
        assert stream.total_update_cost() == 3

    def test_machine_range_validated(self, db_with_headroom):
        with pytest.raises(ValidationError):
            UpdateStream(db_with_headroom, [Update(5, 0, "insert")])

    def test_element_range_validated(self, db_with_headroom):
        with pytest.raises(ValidationError):
            UpdateStream(db_with_headroom, [Update(0, 9, "insert")])

    def test_len_and_iter(self, db_with_headroom):
        updates = [Update(0, 3, "insert"), Update(0, 3, "delete")]
        stream = UpdateStream(db_with_headroom, updates)
        assert len(stream) == 2
        assert list(stream) == updates

    def test_apply_next_past_end_returns_zero(self, db_with_headroom):
        stream = UpdateStream(db_with_headroom, [Update(0, 3, "insert")])
        stream.apply_all()
        assert stream.apply_next() == 0


class TestRandomStream:
    def test_stream_always_valid(self, db_with_headroom):
        stream = random_update_stream(db_with_headroom, length=40, rng=0)
        assert len(stream) == 40
        stream.apply_all()
        db_with_headroom.validate()

    def test_deletes_only_present_elements(self, db_with_headroom):
        stream = random_update_stream(
            db_with_headroom, length=30, insert_probability=0.0, rng=1
        )
        stream.apply_all()  # would raise if it tried to remove an absent key
        db_with_headroom.validate()

    def test_inserts_respect_capacity(self, db_with_headroom):
        stream = random_update_stream(
            db_with_headroom, length=60, insert_probability=1.0, rng=2
        )
        stream.apply_all()
        db_with_headroom.validate()

    def test_seeded(self, db_with_headroom):
        a = random_update_stream(db_with_headroom, length=10, rng=7)
        fresh = DistributedDatabase(
            [m.replaced_shard(m.shard) for m in db_with_headroom.machines],
            nu=db_with_headroom.nu,
        )
        b = random_update_stream(fresh, length=10, rng=7)
        assert list(a) == list(b)


class TestClassStateTracking:
    """The ``classes``-substrate hook: updates move elements between
    adjacent count classes in O(1) instead of rebuilding the class map."""

    def test_class_state_tracks_updates_incrementally(self, db_with_headroom):
        stream = UpdateStream(
            db_with_headroom,
            [Update(0, 3, "insert"), Update(1, 3, "insert"), Update(1, 2, "delete")],
        )
        state = stream.class_state()  # built once, before any update
        import numpy as np

        np.testing.assert_array_equal(
            state.element_classes, db_with_headroom.joint_counts
        )
        stream.apply_all()
        np.testing.assert_array_equal(
            state.element_classes, db_with_headroom.joint_counts
        )
        np.testing.assert_array_equal(
            state.class_sizes,
            np.bincount(
                db_with_headroom.joint_counts, minlength=db_with_headroom.nu + 1
            ),
        )

    def test_class_state_matches_fresh_rebuild_on_random_stream(self):
        import numpy as np

        from repro.database import round_robin, uniform_dataset
        from repro.qsim import ClassVector

        db = round_robin(uniform_dataset(24, 30, rng=3), n_machines=3)
        db = db.with_nu(db.nu + 2)  # headroom so inserts are possible
        stream = random_update_stream(db, 40, rng=5)
        state = stream.class_state()
        stream.apply_all()
        rebuilt = ClassVector.uniform(db.joint_counts, db.nu + 1)
        np.testing.assert_array_equal(state.element_classes, rebuilt.element_classes)
        np.testing.assert_array_equal(state.class_sizes, rebuilt.class_sizes)

    def test_untracked_stream_pays_no_bookkeeping(self, db_with_headroom):
        stream = UpdateStream(db_with_headroom, [Update(0, 3, "insert")])
        stream.apply_all()  # class_state never requested: no ClassVector built
        assert stream._class_state is None

    def test_tracked_over_capacity_insert_fails_atomically(self):
        # Regression: Machine.insert only enforces the local κ_j, so a
        # ν-violating insert used to mutate the machine and *then* blow
        # up in the class-map transfer, leaving the stream position
        # behind the database (a retry double-applied the update).
        import numpy as np

        from repro.errors import ValidationError

        machines = [
            Machine(Multiset(4, {0: 2}), capacity=8, name="m0"),
            Machine(Multiset(4, {0: 1}), capacity=8, name="m1"),
        ]
        db = DistributedDatabase(machines, nu=3)  # element 0 already at ν
        stream = UpdateStream(db, [Update(0, 0, "insert")])
        state = stream.class_state()
        before = db.joint_counts.copy()
        for _ in range(2):  # the retry must not double-apply either
            with pytest.raises(ValidationError):
                stream.apply_next()
        np.testing.assert_array_equal(db.joint_counts, before)
        assert stream.applied == 0
        np.testing.assert_array_equal(state.element_classes, before)
