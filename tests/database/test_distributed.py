"""DistributedDatabase: invariants, derived stats, public parameters."""

import numpy as np
import pytest

from repro.database import DistributedDatabase, Machine, Multiset
from repro.errors import CapacityError, EmptyDatabaseError, ValidationError


class TestConstruction:
    def test_from_shards(self, tiny_db):
        assert tiny_db.n_machines == 2
        assert tiny_db.universe == 4
        assert tiny_db.total_count == 5

    def test_needs_at_least_one_machine(self):
        with pytest.raises(ValidationError):
            DistributedDatabase([])

    def test_universe_must_match(self):
        with pytest.raises(ValidationError):
            DistributedDatabase(
                [Machine(Multiset.empty(3)), Machine(Multiset.empty(4))]
            )

    def test_default_nu_is_joint_max(self):
        shards = [Multiset(4, {0: 2}), Multiset(4, {0: 3})]
        db = DistributedDatabase.from_shards(shards)
        assert db.nu == 5  # joint multiplicity of element 0

    def test_nu_below_joint_max_rejected(self):
        shards = [Multiset(4, {0: 2}), Multiset(4, {0: 3})]
        with pytest.raises(CapacityError):
            DistributedDatabase.from_shards(shards, nu=4)

    def test_from_count_matrix(self):
        counts = np.array([[1, 0, 2], [0, 1, 1]])
        db = DistributedDatabase.from_count_matrix(counts)
        assert db.n_machines == 2
        assert db.universe == 3
        np.testing.assert_array_equal(db.count_matrix, counts)

    def test_count_matrix_must_be_2d(self):
        with pytest.raises(ValidationError):
            DistributedDatabase.from_count_matrix(np.array([1, 2, 3]))

    def test_capacities_argument(self):
        shards = [Multiset(4, {0: 1}), Multiset(4, {1: 1})]
        db = DistributedDatabase.from_shards(shards, capacities=[3, 2])
        assert db.capacities == (3, 2)


class TestDerivedQuantities:
    def test_joint_counts(self, tiny_db):
        np.testing.assert_array_equal(tiny_db.joint_counts, [2, 2, 0, 1])

    def test_machine_sizes(self, tiny_db):
        assert tiny_db.machine_sizes == (3, 2)

    def test_joint_multiset(self, tiny_db):
        joint = tiny_db.joint_multiset()
        assert joint.cardinality() == 5
        assert joint.multiplicity(1) == 2

    def test_sampling_distribution(self, tiny_db):
        np.testing.assert_allclose(
            tiny_db.sampling_distribution(), [0.4, 0.4, 0.0, 0.2]
        )

    def test_empty_database_distribution_raises(self):
        db = DistributedDatabase.from_shards([Multiset.empty(4)], nu=1)
        with pytest.raises(EmptyDatabaseError):
            db.sampling_distribution()

    def test_initial_overlap(self, tiny_db):
        # a = M/(νN) = 5/(4·4)
        assert tiny_db.initial_overlap() == pytest.approx(5 / 16)

    def test_public_parameters(self, tiny_db):
        params = tiny_db.public_parameters()
        assert params["N"] == 4
        assert params["n"] == 2
        assert params["nu"] == 4
        assert params["M"] == 5
        assert params["capacities"] == (2, 1)


class TestDerivedCopies:
    def test_replaced_machine(self, tiny_db):
        new_machine = Machine(Multiset(4, {2: 1}))
        db2 = tiny_db.replaced_machine(1, new_machine)
        assert db2.machine(1).multiplicity(2) == 1
        assert tiny_db.machine(1).multiplicity(2) == 0

    def test_without_machine_data(self, tiny_db):
        db2 = tiny_db.without_machine_data(0)
        assert db2.machine(0).is_empty()
        assert db2.machine(1).size == 2
        # ν stays — it is public knowledge.
        assert db2.nu == tiny_db.nu

    def test_with_nu(self, tiny_db):
        assert tiny_db.with_nu(9).nu == 9

    def test_iteration(self, tiny_db):
        assert len(list(tiny_db)) == 2
        assert len(tiny_db) == 2


class TestValidate:
    def test_passes_on_valid(self, tiny_db):
        tiny_db.validate()

    def test_detects_joint_violation_after_mutation(self):
        shards = [Multiset(4, {0: 1}), Multiset(4, {0: 1})]
        db = DistributedDatabase.from_shards(shards, nu=2)
        # Force an in-place violation through machine with headroom.
        db.machine(0).with_capacity(5)  # copy, no effect
        bumped = db.replaced_machine(0, db.machine(0).with_capacity(5))
        bumped.machine(0).insert(0, 2)  # joint now 4 > ν=2... wait ν recomputed
        with pytest.raises(CapacityError):
            bumped.validate()
