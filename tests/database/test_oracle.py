"""The counting oracles of Eqs. (1)–(3)."""

import numpy as np
import pytest

from repro.database import (
    ControlledOracle,
    DistributedDatabase,
    Machine,
    Multiset,
    ParallelOracle,
    QueryLedger,
    SequentialOracle,
    elementary_update_matrix,
    oracles_for,
)
from repro.errors import ValidationError
from repro.qsim import RegisterLayout, StateVector, haar_random_state, is_permutation_matrix, operator_matrix


@pytest.fixture
def machine():
    return Machine(Multiset(4, {0: 2, 1: 1}), name="m")


class TestSequentialOracle:
    def test_equation_one_on_basis_states(self, machine):
        nu = 3
        oracle = SequentialOracle(machine, 0, nu)
        layout = RegisterLayout.of(i=4, s=nu + 1)
        for i in range(4):
            for s in range(nu + 1):
                state = StateVector.basis(layout, {"i": i, "s": s})
                oracle.apply(state)
                expected_s = (s + machine.multiplicity(i)) % (nu + 1)
                assert state.amplitude({"i": i, "s": expected_s}) == pytest.approx(1.0)

    def test_adjoint_inverts(self, machine, rng):
        oracle = SequentialOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=4, s=4)
        state = haar_random_state(layout, rng)
        before = state.flat()
        oracle.apply(state)
        oracle.apply(state, adjoint=True)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)

    def test_is_permutation_matrix(self, machine):
        oracle = SequentialOracle(machine, 0, 2)
        layout = RegisterLayout.of(i=4, s=3)
        mat = operator_matrix(layout, lambda st: oracle.apply(st))
        assert is_permutation_matrix(mat)

    def test_ledger_records_calls(self, machine):
        ledger = QueryLedger(2)
        oracle = SequentialOracle(machine, 1, 3, ledger=ledger)
        layout = RegisterLayout.of(i=4, s=4)
        state = StateVector.zero(layout)
        oracle.apply(state)
        oracle.apply(state, adjoint=True)
        assert ledger.machine_queries(1) == 2
        assert ledger.machine_queries(0) == 0

    def test_count_register_dimension_checked(self, machine):
        oracle = SequentialOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=4, s=3)  # needs ν+1 = 4
        with pytest.raises(ValidationError):
            oracle.apply(StateVector.zero(layout))

    def test_element_register_dimension_checked(self, machine):
        oracle = SequentialOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=5, s=4)
        with pytest.raises(ValidationError):
            oracle.apply(StateVector.zero(layout))

    def test_capacity_overflow_rejected_at_construction(self):
        heavy = Machine(Multiset(3, {0: 5}))
        with pytest.raises(ValidationError):
            SequentialOracle(heavy, 0, 3)

    def test_modular_wraparound(self):
        machine = Machine(Multiset(2, {0: 3}))
        oracle = SequentialOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=2, s=4)
        state = StateVector.basis(layout, {"i": 0, "s": 2})
        oracle.apply(state)
        assert state.amplitude({"i": 0, "s": (2 + 3) % 4}) == pytest.approx(1.0)


class TestControlledOracle:
    def test_identity_when_flag_zero(self, machine, rng):
        oracle = ControlledOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=4, s=4, b=2)
        state = haar_random_state(layout, rng)
        flag0_before = state.as_array()[:, :, 0].copy()
        oracle.apply(state)
        np.testing.assert_allclose(state.as_array()[:, :, 0], flag0_before, atol=1e-15)

    def test_acts_as_sequential_when_flag_one(self, machine):
        oracle = ControlledOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=4, s=4, b=2)
        state = StateVector.basis(layout, {"i": 0, "s": 0, "b": 1})
        oracle.apply(state)
        assert state.amplitude({"i": 0, "s": 2, "b": 1}) == pytest.approx(1.0)

    def test_adjoint_roundtrip(self, machine, rng):
        oracle = ControlledOracle(machine, 0, 3)
        layout = RegisterLayout.of(i=4, s=4, b=2)
        state = haar_random_state(layout, rng)
        before = state.flat()
        oracle.apply(state)
        oracle.apply(state, adjoint=True)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)


class TestParallelOracle:
    @pytest.fixture
    def db(self):
        return DistributedDatabase.from_shards(
            [Multiset(3, {0: 1, 1: 1}), Multiset(3, {1: 1})], nu=2
        )

    def _layout(self, db):
        regs = {}
        for j in range(db.n_machines):
            regs[f"pi{j}"] = db.universe
            regs[f"ps{j}"] = db.nu + 1
            regs[f"pb{j}"] = 2
        return RegisterLayout.of(**regs)

    def test_one_round_loads_all_multiplicities(self, db):
        oracle = ParallelOracle(db)
        layout = self._layout(db)
        # machine 0 queried on element 1, machine 1 on element 1, flags on.
        state = StateVector.basis(
            layout, {"pi0": 1, "ps0": 0, "pb0": 1, "pi1": 1, "ps1": 0, "pb1": 1}
        )
        oracle.apply(state)
        assert state.amplitude(
            {"pi0": 1, "ps0": 1, "pb0": 1, "pi1": 1, "ps1": 1, "pb1": 1}
        ) == pytest.approx(1.0)

    def test_flag_zero_machine_untouched(self, db):
        oracle = ParallelOracle(db)
        layout = self._layout(db)
        state = StateVector.basis(
            layout, {"pi0": 0, "ps0": 0, "pb0": 0, "pi1": 1, "ps1": 0, "pb1": 1}
        )
        oracle.apply(state)
        assert state.amplitude(
            {"pi0": 0, "ps0": 0, "pb0": 0, "pi1": 1, "ps1": 1, "pb1": 1}
        ) == pytest.approx(1.0)

    def test_ledger_counts_one_round_n_machine_calls(self, db):
        ledger = QueryLedger(db.n_machines)
        oracle = ParallelOracle(db, ledger=ledger)
        state = StateVector.zero(self._layout(db))
        oracle.apply(state)
        assert ledger.parallel_rounds == 1
        assert ledger.sequential_queries == db.n_machines

    def test_adjoint_roundtrip(self, db, rng):
        oracle = ParallelOracle(db)
        state = haar_random_state(self._layout(db), rng)
        before = state.flat()
        oracle.apply(state)
        oracle.apply(state, adjoint=True)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)

    def test_custom_register_names(self, db):
        oracle = ParallelOracle(db)
        layout = RegisterLayout.of(a0=3, c0=3, f0=2, a1=3, c1=3, f1=2)
        state = StateVector.basis(
            layout, {"a0": 0, "c0": 0, "f0": 1, "a1": 1, "c1": 0, "f1": 1}
        )
        oracle.apply(state, register_triples=[("a0", "c0", "f0"), ("a1", "c1", "f1")])
        assert state.amplitude(
            {"a0": 0, "c0": 1, "f0": 1, "a1": 1, "c1": 1, "f1": 1}
        ) == pytest.approx(1.0)

    def test_wrong_triple_count_rejected(self, db):
        oracle = ParallelOracle(db)
        state = StateVector.zero(self._layout(db))
        with pytest.raises(ValidationError):
            oracle.apply(state, register_triples=[("pi0", "ps0", "pb0")])


class TestHelpers:
    def test_oracles_for_builds_per_machine(self, tiny_db):
        oracles = oracles_for(tiny_db)
        assert len(oracles) == tiny_db.n_machines
        assert [o.machine_index for o in oracles] == [0, 1]

    def test_oracles_for_controlled(self, tiny_db):
        oracles = oracles_for(tiny_db, controlled=True)
        assert all(isinstance(o, ControlledOracle) for o in oracles)

    def test_elementary_update_matrix_is_cyclic_shift(self):
        mat = elementary_update_matrix(2)
        expected = np.array([[0, 0, 1], [1, 0, 0], [0, 1, 0]], dtype=float)
        np.testing.assert_allclose(mat, expected)

    def test_update_composition_identity(self):
        # Incrementing c by 1 then building the oracle == U · O (Section 3).
        nu = 3
        u_mat = elementary_update_matrix(nu)
        machine_before = Machine(Multiset(1, {0: 1}), capacity=nu)
        machine_after = Machine(Multiset(1, {0: 2}), capacity=nu)
        layout = RegisterLayout.of(i=1, s=nu + 1)
        o_before = operator_matrix(
            layout, lambda st: SequentialOracle(machine_before, 0, nu).apply(st)
        )
        o_after = operator_matrix(
            layout, lambda st: SequentialOracle(machine_after, 0, nu).apply(st)
        )
        np.testing.assert_allclose(o_after, u_mat @ o_before, atol=1e-12)
