"""Fault tolerance via replication (the intro's second motivation)."""

import numpy as np
import pytest

from repro.core import sample_sequential, target_amplitudes
from repro.database import (
    DistributedDatabase,
    Multiset,
    assess_fault,
    bhattacharyya_fidelity,
    degraded_database,
    disjoint_support,
    replicated,
    sparse_support_dataset,
    worst_case_fault,
)
from repro.errors import EmptyDatabaseError


@pytest.fixture
def dataset():
    return sparse_support_dataset(16, 6, multiplicity=2, rng=0)


class TestBhattacharyya:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert bhattacharyya_fidelity(p, p) == pytest.approx(1.0)

    def test_disjoint_distributions(self):
        assert bhattacharyya_fidelity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_matches_state_overlap(self, dataset):
        db = replicated(dataset, 2)
        p = db.sampling_distribution()
        q = np.roll(p, 1)
        overlap = abs(np.vdot(np.sqrt(p), np.sqrt(q))) ** 2
        assert bhattacharyya_fidelity(p, q) == pytest.approx(overlap)


class TestReplication:
    def test_losing_one_copy_is_invisible(self, dataset):
        """Replicated shards: fidelity with the original stays exactly 1."""
        db = replicated(dataset, 3)
        for k in range(3):
            impact = assess_fault(db, k)
            assert impact.fidelity_with_original == pytest.approx(1.0)
            assert impact.still_samplable

    def test_degraded_replicated_db_samples_original_target(self, dataset):
        db = replicated(dataset, 3)
        degraded = degraded_database(db, 1)
        result = sample_sequential(degraded, backend="subspace")
        # The degraded run is exact for its own data AND matches the
        # original target — replication made the loss invisible.
        assert result.exact
        original_target = target_amplitudes(db)
        degraded_target = target_amplitudes(degraded)
        np.testing.assert_allclose(original_target, degraded_target, atol=1e-12)

    def test_losing_last_copy_is_fatal(self, dataset):
        db = replicated(dataset, 1)
        impact = assess_fault(db, 0)
        assert not impact.still_samplable
        assert impact.fidelity_with_original == 0.0


class TestPartitionedLoss:
    def test_disjoint_loss_costs_exactly_lost_mass(self, dataset):
        """With disjoint shards, F = 1 − M_k/M exactly."""
        db = disjoint_support(dataset, 3, rng=1)
        for k in range(3):
            impact = assess_fault(db, k)
            if db.machine(k).size == db.total_count:
                continue
            assert impact.fidelity_with_original == pytest.approx(
                1.0 - impact.lost_mass
            )

    def test_worst_case_picks_heaviest_disjoint_machine(self, dataset):
        db = disjoint_support(dataset, 3, rng=1)
        worst = worst_case_fault(db)
        heaviest = max(range(3), key=lambda k: db.machine(k).size)
        assert worst.lost_machine == heaviest

    def test_replication_beats_partitioning(self, dataset):
        """The quantitative version of the intro's fault-tolerance claim."""
        part = disjoint_support(dataset, 3, rng=1)
        repl = replicated(dataset, 3)
        assert (
            worst_case_fault(repl).fidelity_with_original
            > worst_case_fault(part).fidelity_with_original
        )

    def test_empty_db_rejected(self):
        db = DistributedDatabase.from_shards([Multiset.empty(4)], nu=1)
        with pytest.raises(EmptyDatabaseError):
            worst_case_fault(db)

    def test_overlapping_shards_partial_protection(self):
        """Keys held on two machines survive a single loss; exclusive keys
        don't — fidelity lands strictly between the two regimes."""
        shards = [Multiset(8, {0: 1, 1: 1}), Multiset(8, {1: 1, 2: 1})]
        db = DistributedDatabase.from_shards(shards, nu=2)
        impact = assess_fault(db, 0)
        assert 0.0 < impact.fidelity_with_original < 1.0


class TestAnnouncedFailure:
    """``degraded_database(..., zero_capacity=True)`` × ``skip_empty``:
    an announced failure is provably never queried (the regression that
    motivated the scenario engine's mask plumbing)."""

    @pytest.fixture
    def degraded(self, dataset):
        db = replicated(dataset, 3)
        return degraded_database(db, 1, zero_capacity=True)

    def test_capacity_republished_as_zero(self, degraded):
        assert degraded.machine(1).capacity == 0
        assert degraded.machine(1).size == 0
        assert degraded.capacities[1] == 0

    def test_silent_default_keeps_the_declaration(self, dataset):
        db = replicated(dataset, 3)
        silent = degraded_database(db, 1)
        assert silent.machine(1).size == 0
        assert silent.machine(1).capacity == db.machine(1).capacity

    def test_sequential_skip_empty_never_queries_the_dead_machine(self, degraded):
        from repro.core import SequentialSampler

        result = SequentialSampler(degraded, skip_zero_capacity=True).run()
        assert result.exact
        assert result.ledger.machine_queries(1) == 0
        for alive in (0, 2):
            assert result.ledger.machine_queries(alive) > 0

    def test_sequential_silent_failure_still_queries(self, dataset):
        db = degraded_database(replicated(dataset, 3), 1)  # not announced
        result = sample_sequential(db)
        assert result.exact
        assert result.ledger.machine_queries(1) > 0

    def test_parallel_skip_empty_restricts_the_rounds(self, degraded):
        from repro.core import ParallelSampler

        result = ParallelSampler(degraded, skip_zero_capacity=True).run()
        assert result.exact
        assert result.ledger.machine_queries(1) == 0

    def test_front_door_routes_skip_empty(self, degraded):
        import repro

        result = repro.sample(
            repro.SamplingRequest(database=degraded, capacity="skip_empty")
        )
        assert result.exact
        assert result.ledger.machine_queries(1) == 0

    def test_replicated_loss_exact_and_invisible_end_to_end(self, degraded, dataset):
        """The degraded run is exact for its target AND that target still
        matches the original distribution (replication pays off)."""
        original = replicated(dataset, 3)
        fidelity = bhattacharyya_fidelity(
            original.sampling_distribution(), degraded.sampling_distribution()
        )
        assert fidelity == pytest.approx(1.0, abs=1e-12)
