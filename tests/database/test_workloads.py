"""Workload generators: shapes, seeding, spec round-trips."""

import numpy as np
import pytest

from repro.database import (
    WorkloadSpec,
    block_dataset,
    single_key_dataset,
    sparse_support_dataset,
    uniform_dataset,
    zipf_dataset,
)
from repro.errors import ValidationError


class TestUniform:
    def test_total_exact(self):
        ds = uniform_dataset(16, 100, rng=0)
        assert ds.cardinality() == 100

    def test_seeding(self):
        a = uniform_dataset(16, 100, rng=9)
        b = uniform_dataset(16, 100, rng=9)
        assert a == b

    def test_spread_roughly_uniform(self):
        ds = uniform_dataset(4, 4000, rng=0)
        freqs = ds.frequencies()
        assert np.all(np.abs(freqs - 0.25) < 0.05)


class TestZipf:
    def test_total_exact(self):
        ds = zipf_dataset(16, 100, rng=0)
        assert ds.cardinality() == 100

    def test_head_heavier_than_tail(self):
        ds = zipf_dataset(32, 5000, exponent=1.5, rng=0)
        counts = ds.counts
        assert counts[0] > counts[16]

    def test_exponent_zero_is_uniform(self):
        ds = zipf_dataset(4, 4000, exponent=0.0, rng=0)
        assert np.all(np.abs(ds.frequencies() - 0.25) < 0.05)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValidationError):
            zipf_dataset(4, 10, exponent=-0.5)


class TestSparse:
    def test_exact_support(self):
        ds = sparse_support_dataset(20, 5, multiplicity=3, rng=0)
        assert ds.support_size() == 5
        assert ds.max_multiplicity() == 3
        assert ds.cardinality() == 15

    def test_support_cannot_exceed_universe(self):
        with pytest.raises(ValidationError):
            sparse_support_dataset(4, 5)


class TestSingleAndBlock:
    def test_single_key(self):
        ds = single_key_dataset(8, key=3, multiplicity=2)
        assert ds.support_size() == 1
        assert ds.multiplicity(3) == 2

    def test_single_key_range(self):
        with pytest.raises(ValidationError):
            single_key_dataset(8, key=8)

    def test_block(self):
        ds = block_dataset(8, block_size=3, multiplicity=2)
        np.testing.assert_array_equal(ds.counts[:4], [2, 2, 2, 0])

    def test_block_too_big(self):
        with pytest.raises(ValidationError):
            block_dataset(4, block_size=5)


class TestWorkloadSpec:
    def test_build_uniform(self):
        spec = WorkloadSpec.of("uniform", universe=8, total=20)
        ds = spec.build(rng=0)
        assert ds.universe == 8
        assert ds.cardinality() == 20

    def test_build_deterministic_generator(self):
        spec = WorkloadSpec.of("block", universe=8, block_size=2)
        assert spec.build() == block_dataset(8, 2)

    def test_label(self):
        spec = WorkloadSpec.of("zipf", universe=8, total=20)
        assert "zipf" in spec.label()
        assert "universe=8" in spec.label()

    def test_unknown_generator(self):
        spec = WorkloadSpec.of("nope", universe=8)
        with pytest.raises(ValidationError):
            spec.build()

    def test_hashable_for_grids(self):
        a = WorkloadSpec.of("uniform", universe=8, total=20)
        b = WorkloadSpec.of("uniform", universe=8, total=20)
        assert len({a, b}) == 1
