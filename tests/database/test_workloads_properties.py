"""Property-based workload-generator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import (
    SEEDED_GENERATORS,
    make_workload,
    workload_names,
    workload_spec_for,
    zipf_dataset,
)
from repro.errors import ValidationError
from repro.utils.rng import as_generator

universes = st.integers(min_value=1, max_value=64)
totals = st.integers(min_value=1, max_value=128)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=40, deadline=None)
@given(universe=universes, total=totals, seed=seeds)
def test_uniform_and_zipf_conserve_total(universe, total, seed):
    """The multinomial generators place exactly ``total`` mass."""
    for name in ("uniform", "zipf"):
        ds = make_workload(name, rng=seed, universe=universe, total=total)
        assert ds.cardinality() == total
        assert ds.universe == universe
        assert np.all(ds.counts >= 0)


@settings(max_examples=40, deadline=None)
@given(universe=universes, total=totals, seed=seeds)
def test_seeded_generators_are_deterministic(universe, total, seed):
    """Same seed → identical dataset, for every seeded generator."""
    for name in SEEDED_GENERATORS:
        spec = workload_spec_for(name, universe=universe, total=total)
        assert spec.build(rng=seed) == spec.build(rng=seed)


@settings(max_examples=30, deadline=None)
@given(
    universe=st.integers(min_value=4, max_value=64),
    support=st.integers(min_value=1, max_value=64),
    multiplicity=st.integers(min_value=1, max_value=5),
    seed=seeds,
)
def test_sparse_support_bounds(universe, support, multiplicity, seed):
    """Sparse datasets hit exactly the requested support, each key at the
    fixed multiplicity — never exceeding the universe."""
    support = min(support, universe)
    ds = make_workload(
        "sparse", rng=seed, universe=universe,
        support_size=support, multiplicity=multiplicity,
    )
    assert ds.support_size() == support
    assert ds.cardinality() == support * multiplicity
    on_support = ds.counts[ds.counts > 0]
    assert np.all(on_support == multiplicity)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_zipf_head_dominates_in_expectation(seed):
    """Averaged over many draws, low keys carry more Zipf mass than high
    keys — the monotone-in-expectation shape the skew scenarios rely on."""
    gen = as_generator(seed)
    counts = sum(
        zipf_dataset(32, 400, exponent=1.5, rng=int(gen.integers(2**31))).counts
        for _ in range(8)
    )
    head, tail = counts[:8].sum(), counts[-8:].sum()
    assert head > tail


@settings(max_examples=40, deadline=None)
@given(universe=universes, total=totals)
def test_workload_spec_for_covers_every_generator(universe, total):
    """The universe/total mapping produces a buildable spec for every
    registered name, with total mass bounded by the request."""
    for name in workload_names():
        ds = workload_spec_for(name, universe=universe, total=total).build(rng=0)
        assert ds.universe == universe
        assert 1 <= ds.cardinality() <= max(total, universe * total)


def test_make_workload_unknown_name():
    with pytest.raises(ValidationError, match="unknown workload"):
        make_workload("pareto", universe=8, total=4)


def test_workload_spec_for_unknown_name():
    with pytest.raises(ValidationError, match="unknown workload"):
        workload_spec_for("pareto", universe=8, total=4)


def test_workload_spec_for_overrides_win():
    spec = workload_spec_for("sparse", universe=16, total=8, multiplicity=3)
    assert dict(spec.params)["multiplicity"] == 3
    assert spec.build(rng=1).cardinality() == 8 * 3
