"""Machine: shard storage, capacities, dynamic updates."""

import pytest

from repro.database import Machine, Multiset
from repro.errors import CapacityError, ValidationError


@pytest.fixture
def machine():
    return Machine(Multiset(6, {0: 2, 3: 1}), capacity=4, name="m0")


class TestConstruction:
    def test_shard_is_copied(self, machine):
        shard = machine.shard
        shard.add(5)
        assert machine.multiplicity(5) == 0

    def test_default_capacity_is_natural(self):
        m = Machine(Multiset(4, {1: 3}))
        assert m.capacity == 3

    def test_capacity_below_natural_rejected(self):
        with pytest.raises(CapacityError):
            Machine(Multiset(4, {1: 3}), capacity=2)

    def test_requires_multiset(self):
        with pytest.raises(ValidationError):
            Machine([1, 2, 3])

    def test_empty_machine_capacity_zero(self):
        m = Machine(Multiset.empty(4))
        assert m.capacity == 0
        assert m.is_empty()


class TestStatistics:
    def test_size_and_support(self, machine):
        assert machine.size == 3       # M_j
        assert machine.support_size == 2  # m_j
        assert machine.universe == 6

    def test_natural_capacity(self, machine):
        assert machine.natural_capacity == 2
        assert machine.capacity == 4

    def test_counts_read_only(self, machine):
        with pytest.raises(ValueError):
            machine.counts[0] = 9


class TestDynamicUpdates:
    def test_insert_costs_one_update_per_unit(self, machine):
        machine.insert(1, 2)
        assert machine.multiplicity(1) == 2
        assert machine.update_operations == 2

    def test_remove_costs_updates(self, machine):
        machine.remove(0, 1)
        assert machine.multiplicity(0) == 1
        assert machine.update_operations == 1

    def test_insert_beyond_capacity_rejected(self, machine):
        with pytest.raises(CapacityError):
            machine.insert(0, 3)  # 2 + 3 > κ = 4

    def test_remove_absent_rejected(self, machine):
        with pytest.raises(ValidationError):
            machine.remove(5)

    def test_updates_accumulate(self, machine):
        machine.insert(1).insert(1).remove(1)
        assert machine.update_operations == 3


class TestDerivedCopies:
    def test_with_capacity(self, machine):
        bumped = machine.with_capacity(10)
        assert bumped.capacity == 10
        assert machine.capacity == 4

    def test_replaced_shard_keeps_capacity(self, machine):
        new = machine.replaced_shard(Multiset(6, {2: 1}))
        assert new.capacity == 4
        assert new.multiplicity(2) == 1
        assert new.multiplicity(0) == 0

    def test_emptied(self, machine):
        empty = machine.emptied()
        assert empty.is_empty()
        assert empty.capacity == 4  # κ_j is public — survives the T̃ construction
        assert machine.size == 3
