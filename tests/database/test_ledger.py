"""Query accounting semantics."""

import pytest

from repro.database import QueryLedger
from repro.errors import ValidationError


class TestRecording:
    def test_machine_calls(self):
        ledger = QueryLedger(3)
        ledger.record_machine_call(0)
        ledger.record_machine_call(0, adjoint=True)
        ledger.record_machine_call(2)
        assert ledger.machine_queries(0) == 2
        assert ledger.machine_queries(1) == 0
        assert ledger.machine_queries(2) == 1
        assert ledger.sequential_queries == 3

    def test_forward_adjoint_split(self):
        ledger = QueryLedger(1)
        ledger.record_machine_call(0)
        ledger.record_machine_call(0, adjoint=True)
        ((_, tally),) = list(ledger.tallies())
        assert tally.forward == 1
        assert tally.adjoint == 1
        assert tally.total == 2

    def test_parallel_round_touches_every_machine(self):
        ledger = QueryLedger(4)
        ledger.record_parallel_round()
        assert ledger.parallel_rounds == 1
        assert ledger.per_machine() == [1, 1, 1, 1]
        assert ledger.sequential_queries == 4

    def test_max_machine_queries(self):
        ledger = QueryLedger(2)
        ledger.record_machine_call(1)
        ledger.record_machine_call(1)
        ledger.record_machine_call(0)
        assert ledger.max_machine_queries() == 2

    def test_machine_index_validated(self):
        ledger = QueryLedger(2)
        with pytest.raises(ValidationError):
            ledger.record_machine_call(2)


class TestFreeze:
    def test_frozen_rejects_recording(self):
        ledger = QueryLedger(1)
        ledger.freeze()
        with pytest.raises(ValidationError):
            ledger.record_machine_call(0)
        with pytest.raises(ValidationError):
            ledger.record_parallel_round()

    def test_frozen_still_readable(self):
        ledger = QueryLedger(1)
        ledger.record_machine_call(0)
        ledger.freeze()
        assert ledger.sequential_queries == 1


class TestSummary:
    def test_summary_dict(self):
        ledger = QueryLedger(2)
        ledger.record_machine_call(0)
        ledger.record_parallel_round()
        summary = ledger.summary()
        assert summary["n_machines"] == 2
        assert summary["sequential_queries"] == 3
        assert summary["parallel_rounds"] == 1
        assert summary["per_machine"] == [2, 1]


class TestBulkRecording:
    """Block recording is observationally identical to repeated single calls."""

    def test_machine_call_count_blocks(self):
        one_by_one, bulk = QueryLedger(2), QueryLedger(2)
        for _ in range(5):
            one_by_one.record_machine_call(1, adjoint=False)
            one_by_one.record_machine_call(1, adjoint=True)
        bulk.record_machine_call(1, adjoint=False, count=5)
        bulk.record_machine_call(1, adjoint=True, count=5)
        assert bulk.per_machine() == one_by_one.per_machine()
        assert bulk.summary() == one_by_one.summary()

    def test_parallel_round_count_blocks(self):
        one_by_one, bulk = QueryLedger(3), QueryLedger(3)
        for _ in range(4):
            one_by_one.record_parallel_round()
        bulk.record_parallel_round(count=4)
        assert bulk.parallel_rounds == one_by_one.parallel_rounds
        assert bulk.per_machine() == one_by_one.per_machine()

    def test_nonpositive_count_rejected(self):
        ledger = QueryLedger(1)
        with pytest.raises(ValidationError):
            ledger.record_machine_call(0, count=0)
        with pytest.raises(ValidationError):
            ledger.record_parallel_round(count=-1)
