"""Sharding strategies: conservation, balance, overlap regimes."""

import numpy as np
import pytest

from repro.database import (
    Multiset,
    concentrate_on_machine,
    disjoint_support,
    partition,
    random_assignment,
    replicated,
    round_robin,
    single_machine,
    skewed_sizes,
)
from repro.errors import ValidationError


@pytest.fixture
def dataset():
    return Multiset(10, {0: 3, 1: 2, 4: 1, 7: 4})


def total_conserved(db, dataset):
    return db.total_count == dataset.cardinality() and np.array_equal(
        db.joint_counts, dataset.counts
    )


class TestRoundRobin:
    def test_conserves_data(self, dataset):
        assert total_conserved(round_robin(dataset, 3), dataset)

    def test_balanced_sizes(self, dataset):
        db = round_robin(dataset, 3)
        sizes = db.machine_sizes
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self, dataset):
        a = round_robin(dataset, 3)
        b = round_robin(dataset, 3)
        np.testing.assert_array_equal(a.count_matrix, b.count_matrix)


class TestRandomAssignment:
    def test_conserves_data(self, dataset):
        assert total_conserved(random_assignment(dataset, 4, rng=0), dataset)

    def test_seeded(self, dataset):
        a = random_assignment(dataset, 4, rng=5)
        b = random_assignment(dataset, 4, rng=5)
        np.testing.assert_array_equal(a.count_matrix, b.count_matrix)


class TestDisjoint:
    def test_conserves_data(self, dataset):
        assert total_conserved(disjoint_support(dataset, 3, rng=1), dataset)

    def test_no_key_on_two_machines(self, dataset):
        db = disjoint_support(dataset, 3, rng=1)
        owners_per_key = (db.count_matrix > 0).sum(axis=0)
        assert owners_per_key.max() <= 1


class TestReplicated:
    def test_every_machine_full_copy(self, dataset):
        db = replicated(dataset, 3)
        for machine in db:
            np.testing.assert_array_equal(machine.counts, dataset.counts)

    def test_nu_scales_with_n(self, dataset):
        db = replicated(dataset, 3)
        assert db.nu >= 3 * dataset.max_multiplicity()
        db.validate()


class TestSingleMachine:
    def test_single(self, dataset):
        db = single_machine(dataset)
        assert db.n_machines == 1
        assert total_conserved(db, dataset)


class TestSkewed:
    def test_conserves_data(self, dataset):
        assert total_conserved(skewed_sizes(dataset, 4, skew=2.0, rng=2), dataset)

    def test_skew_zero_is_roughly_uniform(self):
        big = Multiset(4, {0: 400, 1: 400})
        db = skewed_sizes(big, 2, skew=0.0, rng=3)
        sizes = db.machine_sizes
        assert abs(sizes[0] - sizes[1]) < 200

    def test_high_skew_concentrates(self):
        big = Multiset(4, {0: 200, 1: 200})
        db = skewed_sizes(big, 4, skew=4.0, rng=4)
        assert db.machine_sizes[0] > sum(db.machine_sizes[1:])

    def test_negative_skew_rejected(self, dataset):
        with pytest.raises(ValidationError):
            skewed_sizes(dataset, 2, skew=-1.0)


class TestConcentrate:
    def test_all_on_target(self, dataset):
        db = concentrate_on_machine(dataset, 3, target=1)
        assert db.machine(1).size == dataset.cardinality()
        assert db.machine(0).is_empty()
        assert db.machine(2).is_empty()

    def test_target_range_checked(self, dataset):
        with pytest.raises(ValidationError):
            concentrate_on_machine(dataset, 3, target=3)


class TestDispatch:
    @pytest.mark.parametrize(
        "strategy", ["round_robin", "random", "disjoint", "replicated", "skewed"]
    )
    def test_partition_by_name(self, dataset, strategy):
        db = partition(dataset, 2, strategy=strategy, rng=0)
        assert db.n_machines == 2

    def test_unknown_strategy(self, dataset):
        with pytest.raises(ValidationError, match="unknown partition strategy"):
            partition(dataset, 2, strategy="mystery")
