"""Star topology round/latency accounting."""

import pytest

from repro.database import (
    COORDINATOR,
    parallel_schedule_cost,
    sequential_schedule_cost,
    speedup,
    star_graph,
)
from repro.errors import ValidationError

networkx = pytest.importorskip("networkx")


class TestStarGraph:
    def test_structure(self):
        graph = star_graph(4)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.degree[COORDINATOR] == 4

    def test_machines_only_touch_coordinator(self):
        graph = star_graph(3)
        for node in graph.nodes:
            if node != COORDINATOR:
                assert list(graph.neighbors(node)) == [COORDINATOR]


class TestCosts:
    def test_sequential_cost(self):
        cost = sequential_schedule_cost([0, 1, 0, 2], n_machines=3)
        assert cost.rounds == 4
        assert cost.link_uses == 4

    def test_sequential_validates_indices(self):
        with pytest.raises(ValidationError):
            sequential_schedule_cost([0, 5], n_machines=3)

    def test_parallel_cost(self):
        cost = parallel_schedule_cost(6, n_machines=3)
        assert cost.rounds == 6
        assert cost.link_uses == 18

    def test_parallel_negative_rejected(self):
        with pytest.raises(ValidationError):
            parallel_schedule_cost(-1, n_machines=2)

    def test_speedup(self):
        seq = sequential_schedule_cost([0] * 12, n_machines=3)
        par = parallel_schedule_cost(4, n_machines=3)
        assert speedup(seq, par) == pytest.approx(3.0)

    def test_speedup_zero_parallel(self):
        seq = sequential_schedule_cost([0], 1)
        par = parallel_schedule_cost(0, 1)
        assert speedup(seq, par) == float("inf")
