"""Property-based multiset invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Multiset
from repro.utils.rng import as_generator

universes = st.integers(min_value=1, max_value=12)


@st.composite
def multisets(draw, universe=None):
    n = draw(universes) if universe is None else universe
    counts = draw(
        st.lists(st.integers(min_value=0, max_value=5), min_size=n, max_size=n)
    )
    return Multiset(n, np.array(counts, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(ms=multisets())
def test_cardinality_equals_iteration_length(ms):
    assert ms.cardinality() == len(list(ms))


@settings(max_examples=60, deadline=None)
@given(ms=multisets())
def test_support_size_bounds(ms):
    assert 0 <= ms.support_size() <= ms.universe
    assert ms.support_size() <= ms.cardinality() or ms.is_empty()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_union_add_is_commutative(data):
    n = data.draw(universes)
    a = data.draw(multisets(universe=n))
    b = data.draw(multisets(universe=n))
    assert a.union_add(b) == b.union_add(a)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_union_add_cardinality_additive(data):
    n = data.draw(universes)
    a = data.draw(multisets(universe=n))
    b = data.draw(multisets(universe=n))
    assert a.union_add(b).cardinality() == a.cardinality() + b.cardinality()


@settings(max_examples=60, deadline=None)
@given(ms=multisets(), seed=st.integers(min_value=0, max_value=2**31))
def test_permutation_preserves_cardinality_and_support_size(ms, seed):
    sigma = as_generator(seed).permutation(ms.universe)
    out = ms.permuted(sigma)
    assert out.cardinality() == ms.cardinality()
    assert out.support_size() == ms.support_size()
    assert out.max_multiplicity() == ms.max_multiplicity()


@settings(max_examples=60, deadline=None)
@given(ms=multisets(), seed=st.integers(min_value=0, max_value=2**31))
def test_permutation_roundtrip(ms, seed):
    sigma = as_generator(seed).permutation(ms.universe)
    inverse = np.argsort(sigma)
    assert ms.permuted(sigma).permuted(inverse) == ms


@settings(max_examples=60, deadline=None)
@given(ms=multisets())
def test_frequencies_sum_to_one_when_nonempty(ms):
    if not ms.is_empty():
        assert abs(ms.frequencies().sum() - 1.0) < 1e-12


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_difference_then_union_bounds(data):
    n = data.draw(universes)
    a = data.draw(multisets(universe=n))
    b = data.draw(multisets(universe=n))
    diff = a.difference(b)
    # a − b ⊆ a, pointwise.
    assert np.all(diff.counts <= a.counts)
