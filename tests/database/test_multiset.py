"""Multiset semantics (Table 1 quantities)."""

import numpy as np
import pytest

from repro.database import Multiset
from repro.errors import ValidationError


class TestConstruction:
    def test_empty(self):
        ms = Multiset.empty(5)
        assert ms.is_empty()
        assert ms.cardinality() == 0
        assert ms.support_size() == 0

    def test_from_mapping(self):
        ms = Multiset(4, {0: 2, 3: 1})
        assert ms.multiplicity(0) == 2
        assert ms.multiplicity(3) == 1
        assert ms.multiplicity(1) == 0

    def test_from_iterable_counts_repetition(self):
        ms = Multiset(4, [0, 0, 1, 3, 3, 3])
        assert ms.multiplicity(0) == 2
        assert ms.multiplicity(3) == 3

    def test_from_counts_vector(self):
        ms = Multiset.from_counts(np.array([1, 0, 2]))
        assert ms.universe == 3
        assert ms.cardinality() == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            Multiset(3, np.array([1, -1, 0]))

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(ValidationError):
            Multiset(3, np.array([1, 0]))

    def test_copy_constructor(self):
        a = Multiset(3, {0: 1})
        b = Multiset(3, a)
        a.add(1)
        assert b.multiplicity(1) == 0

    def test_universe_mismatch_copy(self):
        with pytest.raises(ValidationError):
            Multiset(4, Multiset(3, {0: 1}))


class TestTable1Quantities:
    @pytest.fixture
    def ms(self):
        return Multiset(6, {0: 3, 2: 1, 5: 2})

    def test_cardinality_is_sum_of_multiplicities(self, ms):
        assert ms.cardinality() == 6
        assert len(ms) == 6

    def test_support(self, ms):
        np.testing.assert_array_equal(ms.support(), [0, 2, 5])
        assert ms.support_size() == 3

    def test_max_multiplicity(self, ms):
        assert ms.max_multiplicity() == 3

    def test_frequencies(self, ms):
        np.testing.assert_allclose(
            ms.frequencies(), [0.5, 0, 1 / 6, 0, 0, 1 / 3]
        )

    def test_frequencies_of_empty_raises(self):
        with pytest.raises(ValidationError):
            Multiset.empty(3).frequencies()

    def test_contains(self, ms):
        assert 0 in ms
        assert 1 not in ms
        assert 99 not in ms

    def test_iter_repeats_elements(self, ms):
        assert list(ms) == [0, 0, 0, 2, 5, 5]


class TestMutation:
    def test_add_and_remove(self):
        ms = Multiset(3)
        ms.add(1).add(1).remove(1)
        assert ms.multiplicity(1) == 1

    def test_remove_more_than_present_raises(self):
        ms = Multiset(3, {1: 1})
        with pytest.raises(ValidationError):
            ms.remove(1, 2)

    def test_out_of_universe_rejected(self):
        ms = Multiset(3)
        with pytest.raises(ValidationError):
            ms.add(3)
        with pytest.raises(ValidationError):
            ms.add(-1)

    def test_counts_view_is_read_only(self):
        ms = Multiset(3, {0: 1})
        with pytest.raises(ValueError):
            ms.counts[0] = 5


class TestAlgebra:
    def test_union_add(self):
        a = Multiset(4, {0: 1, 1: 2})
        b = Multiset(4, {1: 1, 3: 1})
        joined = a.union_add(b)
        assert joined.multiplicity(1) == 3
        assert joined.cardinality() == 5

    def test_difference_saturates(self):
        a = Multiset(3, {0: 1})
        b = Multiset(3, {0: 3, 1: 1})
        assert a.difference(b).is_empty()

    def test_intersects(self):
        a = Multiset(4, {0: 1})
        b = Multiset(4, {0: 5})
        c = Multiset(4, {1: 1})
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_universe_mismatch(self):
        with pytest.raises(ValidationError):
            Multiset(3).union_add(Multiset(4))


class TestPermuted:
    def test_relabels_elements(self):
        ms = Multiset(4, {0: 2, 1: 1})
        sigma = np.array([2, 3, 0, 1])  # 0→2, 1→3
        out = ms.permuted(sigma)
        assert out.multiplicity(2) == 2
        assert out.multiplicity(3) == 1
        assert out.multiplicity(0) == 0

    def test_preserves_multiplicity_multiset(self):
        ms = Multiset(5, {0: 3, 2: 1})
        sigma = np.array([4, 0, 1, 2, 3])
        out = ms.permuted(sigma)
        assert sorted(out.counts) == sorted(ms.counts)

    def test_identity_permutation(self):
        ms = Multiset(4, {1: 2})
        assert ms.permuted(np.arange(4)) == ms

    def test_rejects_non_permutation(self):
        ms = Multiset(3)
        with pytest.raises(ValidationError):
            ms.permuted(np.array([0, 0, 1]))

    def test_rejects_wrong_length(self):
        ms = Multiset(3)
        with pytest.raises(ValidationError):
            ms.permuted(np.array([0, 1]))


class TestEqualityHash:
    def test_equal_content(self):
        assert Multiset(4, {1: 2}) == Multiset(4, {1: 2})

    def test_hashable(self):
        assert len({Multiset(4, {1: 2}), Multiset(4, {1: 2})}) == 1

    def test_universe_matters(self):
        assert Multiset(4, {1: 2}) != Multiset(5, {1: 2})
