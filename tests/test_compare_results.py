"""benchmarks/compare_results.py — perf-trajectory regression diffing."""

import importlib.util
import json
import os

import pytest

_MODULE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "compare_results.py"
)
_spec = importlib.util.spec_from_file_location("compare_results", _MODULE_PATH)
compare_results = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_results)


def payload(rates):
    return {
        "trajectory": [
            {"scenario": name, "offered_load": "max", "instances_per_sec": rate}
            for name, rate in rates.items()
        ]
    }


class TestComparePayloads:
    def test_no_regression_within_threshold(self):
        base = payload({"served": 1000.0, "batched": 2000.0})
        cur = payload({"served": 850.0, "batched": 2100.0})  # -15%, +5%
        assert compare_results.compare_payloads(base, cur) == []

    def test_regression_past_threshold_warns(self):
        base = payload({"served": 1000.0})
        cur = payload({"served": 700.0})  # -30%
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1
        assert "regression" in warnings[0] and "served" in warnings[0]
        assert "30%" in warnings[0]

    def test_missing_scenario_warns(self):
        base = payload({"served": 1000.0, "gone": 500.0})
        cur = payload({"served": 1000.0})
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1 and "missing" in warnings[0]

    def test_custom_threshold(self):
        base = payload({"served": 1000.0})
        cur = payload({"served": 940.0})  # -6%
        assert compare_results.compare_payloads(base, cur, threshold=0.2) == []
        assert len(compare_results.compare_payloads(base, cur, threshold=0.05)) == 1

    def test_scenario_identity_includes_shape_keys(self):
        row = {"scenario": "poisson", "offered_load": "200/s", "shards": 4,
               "instances_per_sec": 10.0}
        key = compare_results._scenario_key(row)
        assert "poisson" in key and "offered_load=200/s" in key and "shards=4" in key

    def test_rows_without_rate_are_ignored(self):
        base = {"trajectory": [{"scenario": "ref", "instances_per_sec": 0.0},
                               {"scenario": "no-rate"}]}
        assert compare_results.extract_rates(base) == {}


def matrix_payload(cells):
    """An E27-shaped payload: rows live under ``matrix``, keyed by the
    scenario name plus the execution-regime columns."""
    return {
        "matrix": [
            {
                "scenario": scenario,
                "model": "sequential",
                "backend": backend,
                "shards": shards,
                "instances_per_sec": rate,
            }
            for (scenario, backend, shards), rate in cells.items()
        ]
    }


class TestCompareMatrixPayloads:
    def test_matrix_rows_are_extracted(self):
        rates = compare_results.extract_rates(
            matrix_payload({("disjoint-loss", "auto", 0): 500.0})
        )
        assert rates == {
            "disjoint-loss|model=sequential|backend=auto|shards=0": 500.0
        }

    def test_same_scenario_different_cells_are_distinct(self):
        base = matrix_payload({
            ("disjoint-loss", "auto", 0): 1000.0,
            ("disjoint-loss", "auto", 2): 1000.0,
        })
        cur = matrix_payload({
            ("disjoint-loss", "auto", 0): 1000.0,
            ("disjoint-loss", "auto", 2): 500.0,  # only the sharded cell
        })
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1
        assert "shards=2" in warnings[0] and "regression" in warnings[0]

    def test_per_cell_regression_warns(self):
        base = matrix_payload({("churn-heavy", "auto", 0): 2000.0})
        cur = matrix_payload({("churn-heavy", "auto", 0): 1000.0})
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1 and "churn-heavy" in warnings[0]

    def test_mixed_trajectory_and_matrix(self):
        base = payload({"served": 1000.0})
        base["matrix"] = matrix_payload({("zipf-skew", "auto", 0): 800.0})["matrix"]
        cur = payload({"served": 1000.0})
        cur["matrix"] = matrix_payload({("zipf-skew", "auto", 0): 300.0})["matrix"]
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1 and "zipf-skew" in warnings[0]

    def test_default_experiments_include_e27(self):
        assert "E27" in compare_results.DEFAULT_EXPERIMENTS


def fill_payload(fills, column="batch_fill_ratio"):
    return {
        "trajectory": [
            {"scenario": name, column: fill} for name, fill in fills.items()
        ]
    }


class TestFillAndRaggedColumns:
    def test_fills_are_extracted(self):
        fills = compare_results.extract_fills(
            fill_payload({"served-full-load": 0.95})
        )
        assert fills == {"served-full-load|batch_fill_ratio": 0.95}

    def test_ragged_fill_column_is_extracted(self):
        fills = compare_results.extract_fills(
            fill_payload({"ragged/mixed-nu": 1.0}, column="ragged_fill")
        )
        assert fills == {"ragged/mixed-nu|ragged_fill": 1.0}

    def test_fill_drop_past_threshold_warns(self):
        base = fill_payload({"served": 1.0})
        cur = fill_payload({"served": 0.5})  # the fragmentation regression
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1
        assert "fill-ratio regression" in warnings[0] and "served" in warnings[0]

    def test_fill_drop_within_threshold_is_quiet(self):
        base = fill_payload({"served": 1.0})
        cur = fill_payload({"served": 0.85})  # -15% < 20%
        assert compare_results.compare_payloads(base, cur) == []

    def test_fill_missing_from_current_is_not_flagged(self):
        # older current runs may predate the column
        base = fill_payload({"served": 1.0})
        assert compare_results.compare_payloads(base, {"trajectory": []}) == []

    def test_ragged_metrics_are_extracted(self):
        block = {
            "ragged_trickle": {
                "ragged_rate": 4000.0,
                "speedup": 2.5,
                "trickle_fill_ragged": 0.97,
                "padded_rate": 1600.0,  # baseline column: not a gate, not diffed
            }
        }
        metrics = compare_results.extract_ragged_metrics(block)
        assert metrics == {
            "ragged_trickle.ragged_rate": 4000.0,
            "ragged_trickle.speedup": 2.5,
            "ragged_trickle.trickle_fill_ragged": 0.97,
        }

    def test_ragged_rate_drop_warns(self):
        base = {"ragged_trickle": {"ragged_rate": 4000.0, "speedup": 2.5}}
        cur = {"ragged_trickle": {"ragged_rate": 2000.0, "speedup": 2.4}}
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1
        assert "ragged-metric regression" in warnings[0]
        assert "ragged_trickle.ragged_rate" in warnings[0]

    def test_family_rows_get_stable_identities(self):
        # E23 trajectory rows key by family + model/backend cells
        row = {"family": "ragged/mixed-nu/N2048", "model": "parallel",
               "backend": "ragged", "ragged_fill": 1.0}
        fills = compare_results.extract_fills({"trajectory": [row]})
        [key] = fills
        assert "ragged/mixed-nu/N2048" in key
        assert "model=parallel" in key and "backend=ragged" in key


def span_payload(p99s):
    """A payload shaped like the traced E24/E26 smokes' ``"spans"`` key."""
    return {
        "spans": {
            name: {"count": 10, "p50_s": p99 / 2.0, "p99_s": p99}
            for name, p99 in p99s.items()
        }
    }


class TestCompareSpanPayloads:
    def test_span_p99s_are_extracted(self):
        extracted = compare_results.extract_span_p99s(
            span_payload({"execute": 0.004, "build": 0.001})
        )
        assert extracted == {"execute": 0.004, "build": 0.001}

    def test_malformed_span_entries_are_ignored(self):
        assert compare_results.extract_span_p99s(
            {"spans": {"execute": "oops", "build": {"p99_s": 0.0},
                       "marshal": {"count": 3}}}
        ) == {}
        assert compare_results.extract_span_p99s({}) == {}

    def test_p99_growth_past_threshold_warns(self):
        base = span_payload({"execute": 0.010})
        cur = span_payload({"execute": 0.015})  # +50%
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 1
        assert "span p99 regression" in warnings[0]
        assert "execute" in warnings[0] and "+50%" in warnings[0]

    def test_growth_within_threshold_is_quiet(self):
        base = span_payload({"execute": 0.010, "build": 0.002})
        cur = span_payload({"execute": 0.011, "build": 0.002})  # +10%
        assert compare_results.compare_payloads(base, cur) == []

    def test_faster_spans_never_warn(self):
        base = span_payload({"execute": 0.010})
        cur = span_payload({"execute": 0.001})
        assert compare_results.compare_payloads(base, cur) == []

    def test_phase_missing_from_current_is_not_flagged(self):
        # Traced smokes are optional per run — absence is not a regression.
        base = span_payload({"execute": 0.010, "marshal": 0.003})
        cur = span_payload({"execute": 0.010})
        assert compare_results.compare_payloads(base, cur) == []

    def test_span_threshold_reuses_rate_threshold(self):
        base = span_payload({"execute": 0.010})
        cur = span_payload({"execute": 0.0112})  # +12%
        assert compare_results.compare_payloads(base, cur, threshold=0.2) == []
        warnings = compare_results.compare_payloads(base, cur, threshold=0.05)
        assert len(warnings) == 1 and "span p99" in warnings[0]

    def test_rate_and_span_regressions_both_reported(self):
        base = payload({"served": 1000.0})
        base.update(span_payload({"execute": 0.010}))
        cur = payload({"served": 500.0})
        cur.update(span_payload({"execute": 0.030}))
        warnings = compare_results.compare_payloads(base, cur)
        assert len(warnings) == 2
        assert any("throughput regression" in w for w in warnings)
        assert any("span p99 regression" in w for w in warnings)


class TestCompareDirectories:
    @pytest.fixture
    def dirs(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        return str(baseline), str(current)

    def _write(self, directory, experiment_id, rates):
        with open(os.path.join(directory, f"{experiment_id}.json"), "w") as fh:
            json.dump(payload(rates), fh)

    def test_diffs_only_shared_experiments(self, dirs):
        baseline, current = dirs
        self._write(baseline, "E26", {"sharded": 1000.0})
        self._write(current, "E26", {"sharded": 500.0})
        self._write(current, "E24", {"served": 100.0})  # no baseline: skipped
        warnings = compare_results.compare_directories(baseline, current)
        assert len(warnings) == 1 and warnings[0].startswith("[E26]")

    def test_main_clean_exit(self, dirs, capsys):
        baseline, current = dirs
        self._write(baseline, "E26", {"sharded": 1000.0})
        self._write(current, "E26", {"sharded": 990.0})
        code = compare_results.main(["--baseline", baseline, "--current", current])
        assert code == 0
        assert "no throughput regressions" in capsys.readouterr().out

    def test_main_warns_but_exits_zero(self, dirs, capsys):
        baseline, current = dirs
        self._write(baseline, "E26", {"sharded": 1000.0})
        self._write(current, "E26", {"sharded": 100.0})
        code = compare_results.main(["--baseline", baseline, "--current", current])
        assert code == 0
        assert "WARNING" in capsys.readouterr().err

    def test_main_strict_fails(self, dirs):
        baseline, current = dirs
        self._write(baseline, "E26", {"sharded": 1000.0})
        self._write(current, "E26", {"sharded": 100.0})
        code = compare_results.main(
            ["--baseline", baseline, "--current", current, "--strict"]
        )
        assert code == 1


def analysis_report(counts):
    return {
        "version": 1,
        "files_checked": 200,
        "total": sum(counts.values()),
        "counts": dict(counts),
        "findings": [],
        "parse_errors": [],
    }


class TestCompareAnalysisReports:
    """Finding-count diffing of the make-analyze artifact."""

    def test_equal_counts_stay_quiet(self):
        report = analysis_report({"REP001": 2})
        assert compare_results.compare_analysis_reports(report, report) == []

    def test_growth_warns_per_rule(self):
        warnings = compare_results.compare_analysis_reports(
            analysis_report({"REP001": 2}),
            analysis_report({"REP001": 5, "REP003": 1}),
        )
        assert len(warnings) == 2
        assert "REP001: 2 -> 5" in warnings[0]
        assert "REP003: 0 -> 1" in warnings[1]

    def test_shrinkage_is_progress_not_warning(self):
        warnings = compare_results.compare_analysis_reports(
            analysis_report({"REP001": 5}),
            analysis_report({"REP001": 1}),
        )
        assert warnings == []

    def test_directories_pick_up_the_report(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        (baseline / "analysis_report.json").write_text(
            json.dumps(analysis_report({})), encoding="utf-8"
        )
        (current / "analysis_report.json").write_text(
            json.dumps(analysis_report({"REP008": 3})), encoding="utf-8"
        )
        warnings = compare_results.compare_directories(str(baseline), str(current))
        assert warnings == ["[analysis] analysis finding growth in REP008: 0 -> 3"]

    def test_missing_report_skips_silently(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        (current / "analysis_report.json").write_text(
            json.dumps(analysis_report({"REP008": 3})), encoding="utf-8"
        )
        assert compare_results.compare_directories(str(baseline), str(current)) == []
