"""Fidelity and distance measures (Section 2 definitions)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qsim import (
    RegisterLayout,
    StateVector,
    distance_to_fidelity_bound,
    fidelity_mixed_mixed,
    fidelity_mixed_pure,
    fidelity_pure_pure,
    haar_random_state,
    haar_random_vector,
    pure_density,
    random_density_matrix,
    total_variation,
    trace_distance,
)


class TestPurePure:
    def test_identical_states(self, rng):
        vec = haar_random_vector(5, rng)
        assert fidelity_pure_pure(vec, vec) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        assert fidelity_pure_pure(np.array([1, 0]), np.array([0, 1])) == 0.0

    def test_global_phase_invariance(self, rng):
        vec = haar_random_vector(5, rng)
        assert fidelity_pure_pure(vec, np.exp(1j * 0.9) * vec) == pytest.approx(1.0)

    def test_accepts_statevectors(self, rng):
        layout = RegisterLayout.of(i=4)
        a = haar_random_state(layout, rng)
        b = haar_random_state(layout, rng)
        assert fidelity_pure_pure(a, b) == pytest.approx(
            abs(a.overlap(b)) ** 2
        )

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            fidelity_pure_pure(np.ones(2), np.ones(3))


class TestMixedPure:
    def test_reduces_to_pure_pure(self, rng):
        a = haar_random_vector(4, rng)
        b = haar_random_vector(4, rng)
        assert fidelity_mixed_pure(pure_density(a), b) == pytest.approx(
            fidelity_pure_pure(a, b)
        )

    def test_maximally_mixed(self):
        rho = np.eye(4) / 4
        vec = np.array([1, 0, 0, 0], dtype=complex)
        assert fidelity_mixed_pure(rho, vec) == pytest.approx(0.25)


class TestMixedMixed:
    def test_identical_density_matrices(self, rng):
        rho = random_density_matrix(4, rng=rng)
        assert fidelity_mixed_mixed(rho, rho) == pytest.approx(1.0, abs=1e-8)

    def test_agrees_with_pure_formula(self, rng):
        a = haar_random_vector(4, rng)
        b = haar_random_vector(4, rng)
        f_uhlmann = fidelity_mixed_mixed(pure_density(a), pure_density(b))
        assert f_uhlmann == pytest.approx(fidelity_pure_pure(a, b), abs=1e-8)

    def test_symmetry(self, rng):
        rho = random_density_matrix(3, rng=rng)
        sigma = random_density_matrix(3, rng=rng)
        assert fidelity_mixed_mixed(rho, sigma) == pytest.approx(
            fidelity_mixed_mixed(sigma, rho), abs=1e-8
        )

    def test_range(self, rng):
        rho = random_density_matrix(3, rng=rng)
        sigma = random_density_matrix(3, rng=rng)
        f = fidelity_mixed_mixed(rho, sigma)
        assert -1e-9 <= f <= 1 + 1e-9


class TestTraceDistance:
    def test_identical_is_zero(self, rng):
        rho = random_density_matrix(4, rng=rng)
        assert trace_distance(rho, rho) == pytest.approx(0.0, abs=1e-10)

    def test_orthogonal_pures_is_one(self):
        a = pure_density(np.array([1.0, 0.0]))
        b = pure_density(np.array([0.0, 1.0]))
        assert trace_distance(a, b) == pytest.approx(1.0)

    def test_fuchs_van_de_graaf(self, rng):
        # 1 − √F ≤ T ≤ √(1 − F)
        rho = random_density_matrix(4, rng=rng)
        sigma = random_density_matrix(4, rng=rng)
        f = fidelity_mixed_mixed(rho, sigma)
        t = trace_distance(rho, sigma)
        assert 1 - np.sqrt(f) <= t + 1e-8
        assert t <= np.sqrt(1 - f) + 1e-8


class TestTotalVariation:
    def test_identical(self):
        p = np.array([0.25, 0.75])
        assert total_variation(p, p) == 0.0

    def test_disjoint(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_shape_check(self):
        with pytest.raises(ValidationError):
            total_variation(np.ones(2) / 2, np.ones(3) / 3)


class TestDistanceFidelityBound:
    def test_zero_distance_full_fidelity(self):
        assert distance_to_fidelity_bound(0.0) == 1.0

    def test_bound_holds_for_random_pairs(self, rng):
        for _ in range(20):
            a = haar_random_vector(6, rng)
            b = haar_random_vector(6, rng)
            # Align phases to make the bound tight-able.
            phase = np.vdot(a, b)
            if abs(phase) > 0:
                b = b * (phase.conjugate() / abs(phase))
            dist = np.linalg.norm(a - b)
            assert fidelity_pure_pure(a, b) >= distance_to_fidelity_bound(dist) - 1e-9
