"""Born sampling and projective measurement."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qsim import (
    RegisterLayout,
    StateVector,
    empirical_distribution,
    measure_register,
    sample_register,
)
from repro.qsim.measurement import expected_distribution_from_counts
from repro.utils.rng import as_generator


@pytest.fixture
def biased_state():
    layout = RegisterLayout.of(i=3, w=2)
    amps = np.zeros((3, 2), dtype=np.complex128)
    amps[0, 0] = np.sqrt(0.5)
    amps[1, 0] = np.sqrt(0.3)
    amps[2, 1] = np.sqrt(0.2)
    return StateVector.from_array(layout, amps)


class TestSampleRegister:
    def test_outcomes_in_range(self, biased_state, rng):
        outcomes = sample_register(biased_state, "i", shots=100, rng=rng)
        assert outcomes.min() >= 0 and outcomes.max() <= 2

    def test_deterministic_state_always_same_outcome(self, rng):
        layout = RegisterLayout.of(i=4)
        state = StateVector.basis(layout, {"i": 2})
        outcomes = sample_register(state, "i", shots=50, rng=rng)
        assert np.all(outcomes == 2)

    def test_frequencies_approach_born_rule(self, biased_state):
        outcomes = sample_register(biased_state, "i", shots=40000, rng=7)
        freqs = empirical_distribution(outcomes, 3)
        np.testing.assert_allclose(freqs, [0.5, 0.3, 0.2], atol=0.02)

    def test_does_not_mutate_state(self, biased_state, rng):
        before = biased_state.flat()
        sample_register(biased_state, "i", shots=10, rng=rng)
        np.testing.assert_array_equal(biased_state.flat(), before)

    def test_seeded_reproducibility(self, biased_state):
        a = sample_register(biased_state, "i", shots=20, rng=42)
        b = sample_register(biased_state, "i", shots=20, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_requires_positive_shots(self, biased_state):
        with pytest.raises(ValidationError):
            sample_register(biased_state, "i", shots=0)


class TestMeasureRegister:
    def test_collapse_is_consistent(self, biased_state):
        record = measure_register(biased_state, "i", rng=3)
        post = record.post_state
        assert post.norm() == pytest.approx(1.0)
        probs = post.marginal_probabilities("i")
        assert probs[record.outcome] == pytest.approx(1.0)

    def test_probability_matches_marginal(self, biased_state):
        record = measure_register(biased_state, "i", rng=3)
        marg = biased_state.marginal_probabilities("i")
        assert record.probability == pytest.approx(marg[record.outcome])

    def test_original_untouched(self, biased_state):
        before = biased_state.flat()
        measure_register(biased_state, "i", rng=1)
        np.testing.assert_array_equal(biased_state.flat(), before)

    def test_correlated_register_collapses_too(self, biased_state):
        # In biased_state, i=2 is perfectly correlated with w=1.
        gen = as_generator(0)
        for _ in range(20):
            record = measure_register(biased_state, "i", rng=gen)
            if record.outcome == 2:
                assert record.post_state.probability_of({"w": 1}) == pytest.approx(1.0)
            else:
                assert record.post_state.probability_of({"w": 0}) == pytest.approx(1.0)


class TestEmpiricalDistribution:
    def test_normalizes(self):
        freqs = empirical_distribution(np.array([0, 0, 1, 2]), 4)
        np.testing.assert_allclose(freqs, [0.5, 0.25, 0.25, 0.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            empirical_distribution(np.array([5]), 3)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            empirical_distribution(np.array([], dtype=int), 3)


class TestExpectedDistribution:
    def test_from_array(self):
        probs = expected_distribution_from_counts(np.array([2, 2, 0, 1]))
        np.testing.assert_allclose(probs, [0.4, 0.4, 0.0, 0.2])

    def test_from_mapping(self):
        probs = expected_distribution_from_counts({0: 1, 3: 3})
        np.testing.assert_allclose(probs, [0.25, 0.0, 0.0, 0.75])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            expected_distribution_from_counts(np.zeros(3))
