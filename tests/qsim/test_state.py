"""StateVector kernels against dense linear-algebra references."""

import numpy as np
import pytest

from repro.config import strict_mode
from repro.errors import NotUnitaryError, ValidationError
from repro.qsim import (
    RegisterLayout,
    StateVector,
    haar_random_state,
    operator_matrix,
)


@pytest.fixture
def layout():
    return RegisterLayout.of(i=4, s=3, w=2)


class TestConstruction:
    def test_zero_state_is_all_zeros_basis(self, layout):
        state = StateVector.zero(layout)
        assert state.amplitude({"i": 0, "s": 0, "w": 0}) == 1.0
        assert state.norm() == pytest.approx(1.0)

    def test_basis_state(self, layout):
        state = StateVector.basis(layout, {"i": 2, "s": 1, "w": 1})
        assert state.amplitude({"i": 2, "s": 1, "w": 1}) == 1.0
        assert state.amplitude({"i": 0, "s": 0, "w": 0}) == 0.0

    def test_from_array_checks_shape(self, layout):
        with pytest.raises(ValidationError):
            StateVector.from_array(layout, np.zeros((4, 3)))

    def test_from_array_copies(self, layout):
        amps = np.zeros(layout.shape, dtype=np.complex128)
        amps[0, 0, 0] = 1.0
        state = StateVector.from_array(layout, amps)
        amps[0, 0, 0] = 0.0
        assert state.amplitude({"i": 0, "s": 0, "w": 0}) == 1.0

    def test_copy_is_independent(self, layout):
        a = StateVector.zero(layout)
        b = a.copy()
        b.apply_phase_slice("w", 0, -1.0)
        assert a.amplitude({"i": 0, "s": 0, "w": 0}) == 1.0
        assert b.amplitude({"i": 0, "s": 0, "w": 0}) == -1.0


class TestPermutation:
    def test_cyclic_shift_moves_basis_state(self):
        layout = RegisterLayout.of(x=5)
        state = StateVector.basis(layout, {"x": 1})
        perm = (np.arange(5) + 2) % 5  # x -> x+2
        state.apply_permutation("x", perm)
        assert state.amplitude({"x": 3}) == 1.0

    def test_permutation_must_be_bijection(self):
        layout = RegisterLayout.of(x=3)
        state = StateVector.zero(layout)
        with pytest.raises(Exception):
            state.apply_permutation("x", np.array([0, 0, 1]))

    def test_permutation_preserves_norm_random_state(self, rng):
        layout = RegisterLayout.of(x=6, y=2)
        state = haar_random_state(layout, rng)
        norm_before = state.norm()
        state.apply_permutation("x", np.roll(np.arange(6), 1))
        assert state.norm() == pytest.approx(norm_before)

    def test_permutation_then_inverse_is_identity(self, rng):
        layout = RegisterLayout.of(x=6)
        state = haar_random_state(layout, rng)
        before = state.flat()
        perm = np.array([2, 0, 3, 1, 5, 4])
        inverse = np.argsort(perm)
        state.apply_permutation("x", perm).apply_permutation("x", inverse)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)


class TestValueShift:
    def test_matches_equation_one_semantics(self):
        # O|i⟩|s⟩ = |i⟩|(s + c_i) mod 3⟩ with c = (0, 1, 2, 1)
        layout = RegisterLayout.of(i=4, s=3)
        shifts = np.array([0, 1, 2, 1])
        for i in range(4):
            for s in range(3):
                state = StateVector.basis(layout, {"i": i, "s": s})
                state.apply_value_shift("i", "s", shifts)
                expected = (s + shifts[i]) % 3
                assert state.amplitude({"i": i, "s": int(expected)}) == pytest.approx(1.0)

    def test_adjoint_undoes_shift(self, rng):
        layout = RegisterLayout.of(i=4, s=5, w=2)
        state = haar_random_state(layout, rng)
        before = state.flat()
        shifts = np.array([0, 3, 1, 4])
        state.apply_value_shift("i", "s", shifts, sign=1)
        state.apply_value_shift("i", "s", shifts, sign=-1)
        np.testing.assert_allclose(state.flat(), before, atol=1e-12)

    def test_control_after_target_axis(self, rng):
        # target axis before control axis exercises the transpose path
        layout = RegisterLayout.of(s=5, i=4)
        state = haar_random_state(layout, rng)
        shifts = np.array([1, 0, 2, 3])
        reference = state.as_array().copy()
        state.apply_value_shift("i", "s", shifts)
        expected = np.empty_like(reference)
        for i in range(4):
            expected[:, i] = np.roll(reference[:, i], shifts[i])
        np.testing.assert_allclose(state.as_array(), expected, atol=1e-12)

    def test_requires_correct_shift_table_size(self):
        layout = RegisterLayout.of(i=4, s=3)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_value_shift("i", "s", np.array([1, 2]))

    def test_control_equal_target_rejected(self):
        layout = RegisterLayout.of(i=4, s=3)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_value_shift("i", "i", np.zeros(4, dtype=int))

    def test_norm_preserved(self, rng):
        layout = RegisterLayout.of(i=6, s=4)
        state = haar_random_state(layout, rng)
        state.apply_value_shift("i", "s", np.array([0, 1, 2, 3, 2, 1]))
        assert state.norm() == pytest.approx(1.0)


class TestFlagControlledShift:
    def test_identity_on_inactive_flag(self, rng):
        layout = RegisterLayout.of(i=3, s=4, b=2)
        state = haar_random_state(layout, rng)
        inactive = state.as_array()[:, :, 0].copy()
        state.apply_flag_controlled_value_shift("i", "s", "b", np.array([1, 2, 3]))
        np.testing.assert_allclose(state.as_array()[:, :, 0], inactive, atol=1e-15)

    def test_shifts_on_active_flag(self):
        layout = RegisterLayout.of(i=3, s=4, b=2)
        state = StateVector.basis(layout, {"i": 1, "s": 0, "b": 1})
        state.apply_flag_controlled_value_shift("i", "s", "b", np.array([0, 2, 0]))
        assert state.amplitude({"i": 1, "s": 2, "b": 1}) == pytest.approx(1.0)

    def test_equation_two_matches_sequential_oracle_on_flag_one(self, rng):
        # Ô on b=1 ≡ O; build both as matrices and compare the blocks.
        layout = RegisterLayout.of(i=3, s=3, b=2)
        shifts = np.array([1, 0, 2])
        controlled = operator_matrix(
            layout,
            lambda st: st.apply_flag_controlled_value_shift("i", "s", "b", shifts),
        )
        plain_layout = RegisterLayout.of(i=3, s=3)
        plain = operator_matrix(
            plain_layout, lambda st: st.apply_value_shift("i", "s", shifts)
        )
        # Controlled matrix in the (i, s, b) ordering: b is the fastest axis.
        dim = 18
        idx_b0 = [k for k in range(dim) if k % 2 == 0]
        idx_b1 = [k for k in range(dim) if k % 2 == 1]
        block0 = controlled[np.ix_(idx_b0, idx_b0)]
        block1 = controlled[np.ix_(idx_b1, idx_b1)]
        np.testing.assert_allclose(block0, np.eye(9), atol=1e-12)
        np.testing.assert_allclose(block1, plain, atol=1e-12)

    def test_flag_must_be_qubit(self):
        layout = RegisterLayout.of(i=3, s=3, b=3)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_flag_controlled_value_shift("i", "s", "b", np.zeros(3, dtype=int))


class TestLocalUnitary:
    def test_matches_dense_reference(self, rng):
        layout = RegisterLayout.of(a=3, b=4)
        state = haar_random_state(layout, rng)
        mat = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0]
        expected = np.einsum("xy,ay->ax", mat, state.as_array())
        state.apply_local_unitary("b", mat)
        np.testing.assert_allclose(state.as_array(), expected, atol=1e-12)

    def test_shape_validation(self):
        layout = RegisterLayout.of(a=3)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_local_unitary("a", np.eye(2))


class TestJointUnitary:
    def test_two_register_unitary_matches_kron(self, rng):
        layout = RegisterLayout.of(a=2, b=3, c=2)
        state = haar_random_state(layout, rng)
        u_ab = np.linalg.qr(rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6)))[0]
        expected = np.einsum(
            "xyab,abc->xyc", u_ab.reshape(2, 3, 2, 3), state.as_array()
        )
        state.apply_unitary(["a", "b"], u_ab)
        np.testing.assert_allclose(state.as_array(), expected, atol=1e-12)

    def test_non_adjacent_registers(self, rng):
        layout = RegisterLayout.of(a=2, b=3, c=2)
        state = haar_random_state(layout, rng)
        u_ac = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0]
        expected = np.einsum(
            "xzac,abc->xbz", u_ac.reshape(2, 2, 2, 2), state.as_array()
        )
        state.apply_unitary(["a", "c"], u_ac)
        np.testing.assert_allclose(state.as_array(), expected, atol=1e-12)

    def test_duplicate_registers_rejected(self):
        layout = RegisterLayout.of(a=2, b=2)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_unitary(["a", "a"], np.eye(4))


class TestControlledQubitUnitary:
    def test_selects_matrix_by_control_value(self):
        layout = RegisterLayout.of(c=3, t=2)
        mats = np.stack([np.eye(2), np.array([[0, 1], [1, 0]]), np.eye(2)]).astype(
            complex
        )
        state = StateVector.basis(layout, {"c": 1, "t": 0})
        state.apply_controlled_qubit_unitary("c", "t", mats)
        assert state.amplitude({"c": 1, "t": 1}) == pytest.approx(1.0)
        state2 = StateVector.basis(layout, {"c": 0, "t": 0})
        state2.apply_controlled_qubit_unitary("c", "t", mats)
        assert state2.amplitude({"c": 0, "t": 0}) == pytest.approx(1.0)

    def test_target_before_control_axis(self, rng):
        layout = RegisterLayout.of(t=2, c=3)
        state = haar_random_state(layout, rng)
        mats = np.stack(
            [np.eye(2), np.array([[0, 1], [1, 0]]), np.array([[1, 0], [0, -1]])]
        ).astype(complex)
        ref = state.as_array().copy()
        expected = np.empty_like(ref)
        for c in range(3):
            expected[:, c] = mats[c] @ ref[:, c]
        state.apply_controlled_qubit_unitary("c", "t", mats)
        np.testing.assert_allclose(state.as_array(), expected, atol=1e-12)

    def test_target_must_be_qubit(self):
        layout = RegisterLayout.of(c=3, t=3)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_controlled_qubit_unitary("c", "t", np.zeros((3, 2, 2)))

    def test_mats_shape_checked(self):
        layout = RegisterLayout.of(c=3, t=2)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_controlled_qubit_unitary("c", "t", np.zeros((2, 2, 2)))


class TestPhases:
    def test_phase_slice_only_touches_slice(self, rng):
        layout = RegisterLayout.of(i=3, w=2)
        state = haar_random_state(layout, rng)
        ref = state.as_array().copy()
        state.apply_phase_slice("w", 0, 1j)
        np.testing.assert_allclose(state.as_array()[:, 0], 1j * ref[:, 0], atol=1e-15)
        np.testing.assert_allclose(state.as_array()[:, 1], ref[:, 1], atol=1e-15)

    def test_phase_must_be_unit_modulus(self):
        layout = RegisterLayout.of(w=2)
        state = StateVector.zero(layout)
        with pytest.raises(NotUnitaryError):
            state.apply_phase_slice("w", 0, 2.0)

    def test_global_phase(self, rng):
        layout = RegisterLayout.of(i=3)
        state = haar_random_state(layout, rng)
        ref = state.flat()
        state.apply_global_phase(-1.0)
        np.testing.assert_allclose(state.flat(), -ref, atol=1e-15)

    def test_global_phase_unit_modulus_required(self):
        layout = RegisterLayout.of(i=3)
        state = StateVector.zero(layout)
        with pytest.raises(NotUnitaryError):
            state.apply_global_phase(0.5)


class TestProjectorPhase:
    def test_basis_projector_phase(self):
        layout = RegisterLayout.of(i=3, w=2)
        state = StateVector.basis(layout, {"i": 0, "w": 0})
        state.apply_projector_phase({"i": 0, "w": 0}, -1.0)
        assert state.amplitude({"i": 0, "w": 0}) == pytest.approx(-1.0)

    def test_orthogonal_component_untouched(self):
        layout = RegisterLayout.of(i=3, w=2)
        state = StateVector.basis(layout, {"i": 1, "w": 0})
        state.apply_projector_phase({"i": 0, "w": 0}, -1.0)
        assert state.amplitude({"i": 1, "w": 0}) == pytest.approx(1.0)

    def test_vector_projector_matches_dense(self, rng):
        layout = RegisterLayout.of(i=4, w=2)
        vec = np.full(4, 0.5, dtype=np.complex128)
        phase = np.exp(1j * 0.7)

        def apply(st):
            return st.apply_projector_phase({"i": vec, "w": 0}, phase)

        mat = operator_matrix(layout, apply)
        proj = np.kron(np.outer(vec, vec.conj()), np.diag([1.0, 0.0]))
        expected = np.eye(8) + (phase - 1.0) * proj
        np.testing.assert_allclose(mat, expected, atol=1e-12)

    def test_is_unitary_for_unit_phase(self, rng):
        layout = RegisterLayout.of(i=4, w=2)
        state = haar_random_state(layout, rng)
        vec = np.full(4, 0.5, dtype=np.complex128)
        state.apply_projector_phase({"i": vec, "w": 0}, np.exp(1j * 1.3))
        assert state.norm() == pytest.approx(1.0, abs=1e-12)

    def test_requires_unit_factor_vector(self):
        layout = RegisterLayout.of(i=4, w=2)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_projector_phase({"i": np.ones(4), "w": 0}, -1.0)

    def test_requires_unit_phase(self):
        layout = RegisterLayout.of(i=4)
        state = StateVector.zero(layout)
        with pytest.raises(NotUnitaryError):
            state.apply_projector_phase({"i": 0}, 3.0)

    def test_empty_factors_rejected(self):
        layout = RegisterLayout.of(i=4)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.apply_projector_phase({}, -1.0)


class TestAnalysisHelpers:
    def test_marginal_probabilities(self):
        layout = RegisterLayout.of(i=2, w=2)
        amps = np.array([[0.6, 0.0], [0.0, 0.8]], dtype=np.complex128)
        state = StateVector.from_array(layout, amps)
        np.testing.assert_allclose(state.marginal_probabilities("i"), [0.36, 0.64])
        np.testing.assert_allclose(state.marginal_probabilities("w"), [0.36, 0.64])

    def test_probability_of_partial_assignment(self):
        layout = RegisterLayout.of(i=2, w=2)
        amps = np.array([[0.6, 0.0], [0.0, 0.8]], dtype=np.complex128)
        state = StateVector.from_array(layout, amps)
        assert state.probability_of({"i": 1}) == pytest.approx(0.64)
        assert state.probability_of({"i": 1, "w": 0}) == pytest.approx(0.0)

    def test_project_basis_returns_sub_layout(self):
        layout = RegisterLayout.of(i=2, s=3, w=2)
        state = StateVector.basis(layout, {"i": 1, "s": 0, "w": 0})
        projected = state.project_basis({"s": 0, "w": 0})
        assert projected.layout.names == ("i",)
        assert projected.amplitude({"i": 1}) == pytest.approx(1.0)

    def test_project_basis_unnormalized(self):
        layout = RegisterLayout.of(i=2, w=2)
        amps = np.array([[0.6, 0.0], [0.0, 0.8]], dtype=np.complex128)
        state = StateVector.from_array(layout, amps)
        projected = state.project_basis({"w": 0})
        assert projected.norm() == pytest.approx(0.6)

    def test_cannot_project_everything(self):
        layout = RegisterLayout.of(i=2)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            state.project_basis({"i": 0})

    def test_tensor_product(self):
        a = StateVector.basis(RegisterLayout.of(x=2), {"x": 1})
        b = StateVector.basis(RegisterLayout.of(y=3), {"y": 2})
        joined = a.tensor(b)
        assert joined.layout.names == ("x", "y")
        assert joined.amplitude({"x": 1, "y": 2}) == pytest.approx(1.0)

    def test_tensor_name_collision(self):
        a = StateVector.zero(RegisterLayout.of(x=2))
        b = StateVector.zero(RegisterLayout.of(x=3))
        with pytest.raises(ValidationError):
            a.tensor(b)

    def test_overlap_and_distance(self):
        layout = RegisterLayout.of(i=2)
        a = StateVector.basis(layout, {"i": 0})
        b = StateVector.basis(layout, {"i": 1})
        assert a.overlap(b) == 0
        assert a.distance(b) == pytest.approx(np.sqrt(2))
        assert a.fidelity_pure(a) == pytest.approx(1.0)

    def test_layout_mismatch_raises(self):
        a = StateVector.zero(RegisterLayout.of(i=2))
        b = StateVector.zero(RegisterLayout.of(j=2))
        with pytest.raises(ValidationError):
            a.overlap(b)

    def test_normalize(self):
        layout = RegisterLayout.of(i=2)
        state = StateVector.from_array(layout, np.array([3.0, 4.0]))
        state.normalize()
        assert state.norm() == pytest.approx(1.0)

    def test_normalize_zero_vector_raises(self):
        layout = RegisterLayout.of(i=2)
        state = StateVector.from_array(layout, np.zeros(2))
        with pytest.raises(ValidationError):
            state.normalize()


class TestStrictMode:
    def test_strict_mode_passes_clean_unitaries(self, rng):
        layout = RegisterLayout.of(i=4, w=2)
        with strict_mode():
            state = haar_random_state(layout, rng)
            state.apply_phase_slice("w", 0, -1.0)
            state.apply_permutation("w", np.array([1, 0]))

    def test_strict_mode_traps_norm_drift(self):
        layout = RegisterLayout.of(i=2)
        state = StateVector.zero(layout)
        with strict_mode():
            # Corrupt the buffer behind the API's back, then do a "unitary".
            state.as_array()[1] = 5.0
            with pytest.raises(NotUnitaryError):
                state.apply_global_phase(-1.0)
