"""Random-state generators used by the property tests."""

import numpy as np
import pytest

from repro.qsim import (
    RegisterLayout,
    haar_random_state,
    haar_random_unitary,
    haar_random_vector,
    is_density_matrix,
    is_unitary,
    random_density_matrix,
)


class TestHaarVector:
    def test_unit_norm(self, rng):
        vec = haar_random_vector(16, rng)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_seeded_reproducibility(self):
        a = haar_random_vector(8, 13)
        b = haar_random_vector(8, 13)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = haar_random_vector(8, 1)
        b = haar_random_vector(8, 2)
        assert not np.allclose(a, b)


class TestHaarState:
    def test_respects_layout(self, rng):
        layout = RegisterLayout.of(i=3, w=2)
        state = haar_random_state(layout, rng)
        assert state.layout == layout
        assert state.norm() == pytest.approx(1.0)


class TestHaarUnitary:
    def test_is_unitary(self, rng):
        assert is_unitary(haar_random_unitary(7, rng))

    def test_mean_trace_is_small(self):
        # Haar unitaries have E[Tr U] = 0; a gross phase-convention bug
        # (e.g. returning the raw QR factor) biases this strongly.
        traces = [
            np.trace(haar_random_unitary(4, seed)) for seed in range(200)
        ]
        assert abs(np.mean(traces)) < 0.5


class TestRandomDensity:
    def test_valid_density(self, rng):
        assert is_density_matrix(random_density_matrix(5, rng=rng))

    def test_rank_control(self, rng):
        rho = random_density_matrix(6, rank=2, rng=rng)
        eigs = np.linalg.eigvalsh(rho)
        assert (eigs > 1e-10).sum() == 2
