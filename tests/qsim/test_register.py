"""Registers and layouts: naming, axes, shapes, validation."""

import pytest

from repro.errors import ValidationError
from repro.qsim import Register, RegisterLayout


class TestRegister:
    def test_holds_name_and_dim(self):
        reg = Register("i", 4)
        assert reg.name == "i"
        assert reg.dim == 4

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            Register("", 2)

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValidationError):
            Register("x", 0)

    def test_rejects_non_integer_dim(self):
        with pytest.raises(ValidationError):
            Register("x", 2.5)

    def test_is_hashable_and_comparable(self):
        assert Register("a", 3) == Register("a", 3)
        assert Register("a", 3) != Register("a", 4)
        assert len({Register("a", 3), Register("a", 3)}) == 1


class TestRegisterLayout:
    def test_shape_follows_declaration_order(self):
        layout = RegisterLayout.of(i=4, s=3, w=2)
        assert layout.shape == (4, 3, 2)
        assert layout.names == ("i", "s", "w")

    def test_dimension_is_product(self):
        layout = RegisterLayout.of(i=4, s=3, w=2)
        assert layout.dimension == 24

    def test_axis_lookup(self):
        layout = RegisterLayout.of(i=4, s=3, w=2)
        assert layout.axis("i") == 0
        assert layout.axis("s") == 1
        assert layout.axis("w") == 2

    def test_axes_lookup_multiple(self):
        layout = RegisterLayout.of(i=4, s=3, w=2)
        assert layout.axes(["w", "i"]) == (2, 0)

    def test_unknown_register_raises(self):
        layout = RegisterLayout.of(i=4)
        with pytest.raises(ValidationError, match="unknown register"):
            layout.axis("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            RegisterLayout([Register("i", 2), Register("i", 3)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValidationError):
            RegisterLayout([])

    def test_contains(self):
        layout = RegisterLayout.of(i=4, w=2)
        assert "i" in layout
        assert "z" not in layout

    def test_dim_of_register(self):
        layout = RegisterLayout.of(i=4, w=2)
        assert layout.dim("w") == 2

    def test_extended_appends(self):
        layout = RegisterLayout.of(i=4)
        bigger = layout.extended(Register("w", 2))
        assert bigger.names == ("i", "w")
        # original untouched
        assert layout.names == ("i",)

    def test_equality_and_hash(self):
        a = RegisterLayout.of(i=4, w=2)
        b = RegisterLayout.of(i=4, w=2)
        c = RegisterLayout.of(w=2, i=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_basis_index_full_assignment(self):
        layout = RegisterLayout.of(i=4, s=3, w=2)
        assert layout.basis_index({"i": 2, "s": 1, "w": 0}) == (2, 1, 0)

    def test_basis_index_missing_register(self):
        layout = RegisterLayout.of(i=4, w=2)
        with pytest.raises(ValidationError, match="missing"):
            layout.basis_index({"i": 1})

    def test_basis_index_unknown_register(self):
        layout = RegisterLayout.of(i=4, w=2)
        with pytest.raises(ValidationError, match="unknown"):
            layout.basis_index({"i": 1, "w": 0, "zz": 0})

    def test_basis_index_out_of_range(self):
        layout = RegisterLayout.of(i=4, w=2)
        with pytest.raises(ValidationError, match="out of range"):
            layout.basis_index({"i": 4, "w": 0})

    def test_iteration_yields_registers(self):
        layout = RegisterLayout.of(i=4, w=2)
        assert [r.name for r in layout] == ["i", "w"]
        assert len(layout) == 2
