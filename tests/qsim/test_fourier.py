"""Fourier / uniform-preparation matrices: F|0⟩ = |π⟩ and unitarity."""

import numpy as np
import pytest

from repro.qsim import (
    dft_matrix,
    is_unitary,
    uniform_preparation_matrix,
    uniform_state,
)


@pytest.mark.parametrize("dim", [1, 2, 3, 4, 7, 16, 31])
class TestBothPreparations:
    def test_dft_is_unitary(self, dim):
        assert is_unitary(dft_matrix(dim))

    def test_householder_is_unitary(self, dim):
        assert is_unitary(uniform_preparation_matrix(dim))

    def test_dft_maps_zero_to_uniform(self, dim):
        np.testing.assert_allclose(
            dft_matrix(dim)[:, 0], uniform_state(dim), atol=1e-12
        )

    def test_householder_maps_zero_to_uniform(self, dim):
        np.testing.assert_allclose(
            uniform_preparation_matrix(dim)[:, 0], uniform_state(dim), atol=1e-12
        )


class TestUniformState:
    def test_amplitudes(self):
        vec = uniform_state(4)
        np.testing.assert_allclose(vec, np.full(4, 0.5), atol=1e-15)

    def test_norm(self):
        assert np.linalg.norm(uniform_state(9)) == pytest.approx(1.0)


class TestHouseholderIsReal:
    def test_real_entries(self):
        mat = uniform_preparation_matrix(8)
        assert np.allclose(mat.imag, 0.0)

    def test_involution(self):
        # A Householder reflection is its own inverse.
        mat = uniform_preparation_matrix(8)
        np.testing.assert_allclose(mat @ mat, np.eye(8), atol=1e-12)


class TestDftStructure:
    def test_dft_squared_is_parity(self):
        # F² is the index-reversal permutation (x ↦ -x mod N).
        dim = 5
        f = dft_matrix(dim)
        parity = np.zeros((dim, dim))
        for x in range(dim):
            parity[(-x) % dim, x] = 1
        np.testing.assert_allclose(f @ f, parity, atol=1e-12)

    def test_dft_diagonalizes_cyclic_shift(self):
        dim = 6
        f = dft_matrix(dim)
        shift = np.zeros((dim, dim))
        for x in range(dim):
            shift[(x + 1) % dim, x] = 1
        diag = f.conj().T @ shift @ f
        off_diag = diag - np.diag(np.diagonal(diag))
        assert np.abs(off_diag).max() < 1e-12
