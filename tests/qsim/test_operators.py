"""Operator utilities: unitarity checks, matrix materialization, blocks."""

import numpy as np
import pytest

from repro.errors import NotUnitaryError, ValidationError
from repro.qsim import (
    MatrixOperator,
    RegisterLayout,
    StateVector,
    adjoint_blocks,
    assert_unitary,
    controlled_rotation_blocks,
    haar_random_unitary,
    is_permutation_matrix,
    is_unitary,
    operator_matrix,
)


class TestUnitaryChecks:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(5))

    def test_haar_random_is_unitary(self, rng):
        assert is_unitary(haar_random_unitary(6, rng))

    def test_nonsquare_is_not(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_scaled_identity_is_not(self):
        assert not is_unitary(2 * np.eye(3))

    def test_assert_unitary_raises_with_residual(self):
        with pytest.raises(NotUnitaryError, match="residual"):
            assert_unitary(np.diag([1.0, 2.0]), "test op")


class TestPermutationMatrix:
    def test_permutation_detected(self):
        mat = np.zeros((3, 3))
        mat[[1, 2, 0], [0, 1, 2]] = 1
        assert is_permutation_matrix(mat)

    def test_doubly_stochastic_but_not_permutation(self):
        assert not is_permutation_matrix(np.full((2, 2), 0.5))

    def test_identity(self):
        assert is_permutation_matrix(np.eye(4))


class TestOperatorMatrix:
    def test_materializes_permutation(self):
        layout = RegisterLayout.of(x=3)
        perm = np.array([1, 2, 0])
        mat = operator_matrix(layout, lambda st: st.apply_permutation("x", perm))
        expected = np.zeros((3, 3))
        expected[perm, np.arange(3)] = 1
        np.testing.assert_allclose(mat, expected, atol=1e-12)

    def test_materializes_local_unitary(self, rng):
        layout = RegisterLayout.of(x=2, y=2)
        u = haar_random_unitary(2, rng)
        mat = operator_matrix(layout, lambda st: st.apply_local_unitary("y", u))
        np.testing.assert_allclose(mat, np.kron(np.eye(2), u), atol=1e-12)


class TestMatrixOperator:
    def test_apply_equals_matrix_action(self, rng):
        layout = RegisterLayout.of(x=3, y=2)
        u = haar_random_unitary(2, rng)
        op = MatrixOperator(layout, ("y",), u)
        state = StateVector.basis(layout, {"x": 1, "y": 0})
        op.apply(state)
        expected = u[:, 0]
        np.testing.assert_allclose(state.as_array()[1, :], expected, atol=1e-12)

    def test_adjoint_composes_to_identity(self, rng):
        layout = RegisterLayout.of(y=4)
        u = haar_random_unitary(4, rng)
        op = MatrixOperator(layout, ("y",), u)
        composed = op.adjoint().compose(op)
        np.testing.assert_allclose(composed.matrix, np.eye(4), atol=1e-12)

    def test_compose_requires_same_registers(self):
        layout = RegisterLayout.of(x=2, y=2)
        a = MatrixOperator(layout, ("x",), np.eye(2))
        b = MatrixOperator(layout, ("y",), np.eye(2))
        with pytest.raises(ValidationError):
            a.compose(b)

    def test_shape_validation(self):
        layout = RegisterLayout.of(x=3)
        with pytest.raises(ValidationError):
            MatrixOperator(layout, ("x",), np.eye(2))

    def test_assert_unitary_passes(self, rng):
        layout = RegisterLayout.of(x=3)
        MatrixOperator(layout, ("x",), haar_random_unitary(3, rng)).assert_unitary()


class TestRotationBlocks:
    def test_blocks_are_unitary(self):
        cos = np.array([1.0, 0.6, 0.0])
        sin = np.sqrt(1 - cos**2)
        blocks = controlled_rotation_blocks(cos, sin)
        for block in blocks:
            assert is_unitary(block)

    def test_block_action_on_zero(self):
        # column 0 must be (cos, sin): |0⟩ ↦ cos|0⟩ + sin|1⟩
        cos = np.array([0.8])
        sin = np.array([0.6])
        blocks = controlled_rotation_blocks(cos, sin)
        np.testing.assert_allclose(blocks[0][:, 0], [0.8, 0.6])

    def test_requires_normalized_pairs(self):
        with pytest.raises(NotUnitaryError):
            controlled_rotation_blocks(np.array([0.9]), np.array([0.9]))

    def test_adjoint_blocks_invert(self):
        cos = np.array([0.28, 1.0, 0.5])
        sin = np.sqrt(1 - cos**2)
        blocks = controlled_rotation_blocks(cos, sin)
        adj = adjoint_blocks(blocks)
        for b, a in zip(blocks, adj):
            np.testing.assert_allclose(a @ b, np.eye(2), atol=1e-12)

    def test_adjoint_blocks_shape_check(self):
        with pytest.raises(ValidationError):
            adjoint_blocks(np.zeros((2, 3, 3)))
