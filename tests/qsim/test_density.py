"""Partial trace, purity, purification (Appendix B substrate)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qsim import (
    RegisterLayout,
    StateVector,
    haar_random_state,
    is_density_matrix,
    pure_density,
    purity,
    random_density_matrix,
    reduced_density_matrix,
    standard_purification,
)


class TestReducedDensityMatrix:
    def test_product_state_reduces_to_pure(self):
        layout = RegisterLayout.of(x=2, y=3)
        state = StateVector.basis(layout, {"x": 1, "y": 2})
        rho = reduced_density_matrix(state, ["x"])
        expected = np.zeros((2, 2))
        expected[1, 1] = 1.0
        np.testing.assert_allclose(rho, expected, atol=1e-12)

    def test_bell_state_reduces_to_maximally_mixed(self):
        layout = RegisterLayout.of(x=2, y=2)
        amps = np.zeros((2, 2), dtype=np.complex128)
        amps[0, 0] = amps[1, 1] = 1 / np.sqrt(2)
        state = StateVector.from_array(layout, amps)
        rho = reduced_density_matrix(state, ["x"])
        np.testing.assert_allclose(rho, np.eye(2) / 2, atol=1e-12)

    def test_trace_is_one(self, rng):
        layout = RegisterLayout.of(x=3, y=4, z=2)
        state = haar_random_state(layout, rng)
        rho = reduced_density_matrix(state, ["x", "z"])
        assert np.trace(rho).real == pytest.approx(1.0)
        assert rho.shape == (6, 6)

    def test_keep_order_controls_indexing(self, rng):
        layout = RegisterLayout.of(x=2, y=3)
        state = haar_random_state(layout, rng)
        rho_xy = reduced_density_matrix(state, ["x", "y"])
        rho_yx = reduced_density_matrix(state, ["y", "x"])
        # Both are the full pure state, related by the swap permutation.
        perm = np.array([y * 2 + x for x in range(2) for y in range(3)])
        np.testing.assert_allclose(rho_xy, rho_yx[np.ix_(perm, perm)], atol=1e-12)

    def test_must_keep_something(self, rng):
        layout = RegisterLayout.of(x=2)
        state = StateVector.zero(layout)
        with pytest.raises(ValidationError):
            reduced_density_matrix(state, [])

    def test_is_valid_density_matrix(self, rng):
        layout = RegisterLayout.of(x=3, y=5)
        state = haar_random_state(layout, rng)
        rho = reduced_density_matrix(state, ["x"])
        assert is_density_matrix(rho)


class TestPurity:
    def test_pure_state_purity_one(self):
        rho = pure_density(np.array([1.0, 1.0]) / np.sqrt(2))
        assert purity(rho) == pytest.approx(1.0)

    def test_maximally_mixed(self):
        assert purity(np.eye(4) / 4) == pytest.approx(0.25)

    def test_random_density_between(self, rng):
        rho = random_density_matrix(5, rng=rng)
        assert 1 / 5 - 1e-9 <= purity(rho) <= 1 + 1e-9


class TestIsDensityMatrix:
    def test_accepts_random_density(self, rng):
        assert is_density_matrix(random_density_matrix(4, rng=rng))

    def test_rejects_non_hermitian(self):
        mat = np.array([[0.5, 1.0], [0.0, 0.5]])
        assert not is_density_matrix(mat)

    def test_rejects_wrong_trace(self):
        assert not is_density_matrix(np.eye(3))

    def test_rejects_negative_eigenvalue(self):
        assert not is_density_matrix(np.diag([1.5, -0.5]))


class TestPurification:
    def test_purification_traces_back(self, rng):
        rho = random_density_matrix(4, rank=2, rng=rng)
        psi = standard_purification(rho)
        back = reduced_density_matrix(psi, ["X"])
        np.testing.assert_allclose(back, rho, atol=1e-10)

    def test_purification_is_unit_vector(self, rng):
        rho = random_density_matrix(3, rng=rng)
        psi = standard_purification(rho)
        assert psi.norm() == pytest.approx(1.0)

    def test_rejects_invalid_input(self):
        with pytest.raises(ValidationError):
            standard_purification(np.eye(3))

    def test_pure_density_rejects_zero(self):
        with pytest.raises(ValidationError):
            pure_density(np.zeros(3))
