"""Property-based invariants of the statevector kernels (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qsim import RegisterLayout, StateVector, haar_random_state
from repro.utils.rng import as_generator

dims = st.integers(min_value=2, max_value=6)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _random_state(i_dim, s_dim, seed):
    layout = RegisterLayout.of(i=i_dim, s=s_dim, w=2)
    return haar_random_state(layout, as_generator(seed))


@settings(max_examples=40, deadline=None)
@given(i_dim=dims, s_dim=dims, seed=seeds, data=st.data())
def test_value_shift_preserves_norm(i_dim, s_dim, seed, data):
    state = _random_state(i_dim, s_dim, seed)
    shifts = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=s_dim - 1),
                min_size=i_dim,
                max_size=i_dim,
            )
        )
    )
    state.apply_value_shift("i", "s", shifts)
    assert abs(state.norm() - 1.0) < 1e-10


@settings(max_examples=40, deadline=None)
@given(i_dim=dims, s_dim=dims, seed=seeds, data=st.data())
def test_value_shift_roundtrip_is_identity(i_dim, s_dim, seed, data):
    state = _random_state(i_dim, s_dim, seed)
    before = state.flat()
    shifts = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=3 * s_dim),
                min_size=i_dim,
                max_size=i_dim,
            )
        )
    )
    state.apply_value_shift("i", "s", shifts, sign=1)
    state.apply_value_shift("i", "s", shifts, sign=-1)
    np.testing.assert_allclose(state.flat(), before, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(i_dim=dims, seed=seeds)
def test_permutation_preserves_probability_multiset(i_dim, seed):
    layout = RegisterLayout.of(x=i_dim)
    state = haar_random_state(layout, as_generator(seed))
    probs_before = np.sort(state.marginal_probabilities("x"))
    perm = as_generator(seed + 1).permutation(i_dim)
    state.apply_permutation("x", perm)
    probs_after = np.sort(state.marginal_probabilities("x"))
    np.testing.assert_allclose(probs_after, probs_before, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(i_dim=dims, seed=seeds, angle=st.floats(min_value=-np.pi, max_value=np.pi))
def test_projector_phase_preserves_norm(i_dim, seed, angle):
    layout = RegisterLayout.of(i=i_dim, w=2)
    state = haar_random_state(layout, as_generator(seed))
    vec = np.full(i_dim, 1.0 / np.sqrt(i_dim), dtype=np.complex128)
    state.apply_projector_phase({"i": vec, "w": 0}, np.exp(1j * angle))
    assert abs(state.norm() - 1.0) < 1e-10


@settings(max_examples=40, deadline=None)
@given(i_dim=dims, seed=seeds, angle=st.floats(min_value=-np.pi, max_value=np.pi))
def test_projector_phase_inverse(i_dim, seed, angle):
    layout = RegisterLayout.of(i=i_dim, w=2)
    state = haar_random_state(layout, as_generator(seed))
    before = state.flat()
    vec = np.full(i_dim, 1.0 / np.sqrt(i_dim), dtype=np.complex128)
    state.apply_projector_phase({"i": vec, "w": 0}, np.exp(1j * angle))
    state.apply_projector_phase({"i": vec, "w": 0}, np.exp(-1j * angle))
    np.testing.assert_allclose(state.flat(), before, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(c_dim=dims, seed=seeds)
def test_controlled_qubit_unitary_preserves_norm(c_dim, seed):
    layout = RegisterLayout.of(c=c_dim, t=2)
    gen = as_generator(seed)
    state = haar_random_state(layout, gen)
    # Random per-control unitaries via QR.
    mats = np.stack(
        [
            np.linalg.qr(gen.normal(size=(2, 2)) + 1j * gen.normal(size=(2, 2)))[0]
            for _ in range(c_dim)
        ]
    )
    state.apply_controlled_qubit_unitary("c", "t", mats)
    assert abs(state.norm() - 1.0) < 1e-10


@settings(max_examples=30, deadline=None)
@given(i_dim=dims, s_dim=dims, seed=seeds)
def test_marginals_sum_to_one(i_dim, s_dim, seed):
    state = _random_state(i_dim, s_dim, seed)
    for reg in ("i", "s", "w"):
        probs = state.marginal_probabilities(reg)
        assert abs(probs.sum() - 1.0) < 1e-10
        assert np.all(probs >= -1e-15)


@settings(max_examples=30, deadline=None)
@given(i_dim=dims, seed=seeds)
def test_overlap_cauchy_schwarz(i_dim, seed):
    layout = RegisterLayout.of(i=i_dim)
    gen = as_generator(seed)
    a = haar_random_state(layout, gen)
    b = haar_random_state(layout, gen)
    assert abs(a.overlap(b)) <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(i_dim=dims, seed=seeds)
def test_distance_triangle_inequality(i_dim, seed):
    layout = RegisterLayout.of(i=i_dim)
    gen = as_generator(seed)
    a = haar_random_state(layout, gen)
    b = haar_random_state(layout, gen)
    c = haar_random_state(layout, gen)
    assert a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12
