"""The O(ν)-memory count-class compressed state (``classes`` substrate)."""

import numpy as np
import pytest

from repro.config import strict_mode
from repro.core import u_rotation_blocks
from repro.errors import NotUnitaryError, ValidationError
from repro.qsim import ClassVector, StateVector


@pytest.fixture
def classes():
    """8 elements in classes (counts) 0..3: sizes N_c = (3, 2, 2, 1)."""
    return np.array([0, 0, 0, 1, 1, 2, 2, 3], dtype=np.int64)


@pytest.fixture
def state(classes):
    return ClassVector.uniform(classes, 4)


class TestConstruction:
    def test_uniform_is_normalized(self, state):
        assert state.norm() == pytest.approx(1.0)

    def test_uniform_matches_dense_pi(self, state):
        dense = state.to_statevector()
        expected = np.zeros((8, 2), dtype=np.complex128)
        expected[:, 0] = 1.0 / np.sqrt(8)
        np.testing.assert_allclose(dense.as_array(), expected)

    def test_class_sizes(self, state):
        np.testing.assert_array_equal(state.class_sizes, [3, 2, 2, 1])

    def test_logical_layout(self, state):
        assert state.layout.shape == (8, 2)
        assert state.dimension == 16

    def test_out_of_range_class_rejected(self):
        with pytest.raises(ValidationError):
            ClassVector(np.array([0, 5]), n_classes=4)

    def test_bad_amp_shape_rejected(self, classes):
        with pytest.raises(ValidationError):
            ClassVector(classes, 4, amps=np.zeros((4, 3)))

    def test_memory_independent_of_universe(self):
        big = ClassVector.uniform(np.zeros(10**5, dtype=np.int64), 4)
        assert big.class_amplitudes().size == 8  # (ν+1) × 2 cells only


class TestKernelsAgainstDense:
    """Every class-space kernel must equal the dense kernel elementwise."""

    def _dense_twin(self, state):
        return state.to_statevector()

    def test_class_flag_unitary_is_dense_controlled_rotation(self, state, classes):
        blocks = u_rotation_blocks(3)
        dense = self._dense_twin(state)
        # Dense equivalent: per-element blocks selected by the class map.
        dense.apply_controlled_qubit_unitary("i", "w", blocks[classes])
        state.apply_class_flag_unitary(blocks)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_phase_slice_matches_dense(self, state):
        dense = self._dense_twin(state)
        phase = np.exp(0.7j)
        dense.apply_phase_slice("w", 0, phase)
        state.apply_phase_slice("w", 0, phase)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_pi_projector_phase_matches_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)  # leave the uniform state first
        dense = self._dense_twin(state)
        phase = np.exp(1.1j)
        dense.apply_pi_projector_phase(phase)
        state.apply_pi_projector_phase(phase)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_global_phase(self, state):
        state.apply_global_phase(-1.0)
        assert state.class_amplitudes()[0, 0] == pytest.approx(-1.0 / np.sqrt(8))

    def test_marginals_match_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)
        dense = self._dense_twin(state)
        for reg in ("i", "w"):
            np.testing.assert_allclose(
                state.marginal_probabilities(reg),
                dense.marginal_probabilities(reg),
                atol=1e-12,
            )

    def test_probability_of_matches_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)
        dense = self._dense_twin(state)
        for assignment in ({"w": 0}, {"w": 1}, {"i": 5}, {"i": 7, "w": 1}):
            assert state.probability_of(assignment) == pytest.approx(
                dense.probability_of(assignment), abs=1e-12
            )


class TestUnitarityAndGuards:
    def test_rotation_preserves_norm(self, state):
        state.apply_class_flag_unitary(u_rotation_blocks(3))
        assert state.norm() == pytest.approx(1.0)

    def test_strict_mode_traps_norm_drift(self, state):
        bad = np.tile(np.eye(2, dtype=np.complex128) * 2.0, (4, 1, 1))
        with strict_mode():
            with pytest.raises(NotUnitaryError):
                state.apply_class_flag_unitary(bad)

    def test_nonunit_phase_rejected(self, state):
        with pytest.raises(NotUnitaryError):
            state.apply_global_phase(0.5)
        with pytest.raises(NotUnitaryError):
            state.apply_phase_slice("w", 0, 2.0)

    def test_element_phase_slice_rejected(self, state):
        with pytest.raises(ValidationError):
            state.apply_phase_slice("i", 3, -1.0)

    def test_overlap_requires_same_class_map(self, state):
        other = ClassVector.uniform(np.zeros(8, dtype=np.int64), 4)
        with pytest.raises(ValidationError):
            state.overlap(other)

    def test_copy_is_independent(self, state):
        twin = state.copy()
        twin.apply_global_phase(-1.0)
        assert state.class_amplitudes()[0, 0] != twin.class_amplitudes()[0, 0]

    def test_overlap_and_fidelity(self, state):
        assert state.overlap(state) == pytest.approx(1.0)
        assert state.fidelity_pure(state) == pytest.approx(1.0)


class TestDenseExpansion:
    def test_to_statevector_roundtrip_norm(self, state):
        assert isinstance(state.to_statevector(), StateVector)
        assert state.to_statevector().norm() == pytest.approx(state.norm())
