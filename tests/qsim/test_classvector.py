"""The O(ν)-memory count-class compressed state (``classes`` substrate)."""

import numpy as np
import pytest

from repro.config import strict_mode
from repro.core import u_rotation_blocks
from repro.errors import NotUnitaryError, ValidationError
from repro.qsim import ClassVector, StateVector


@pytest.fixture
def classes():
    """8 elements in classes (counts) 0..3: sizes N_c = (3, 2, 2, 1)."""
    return np.array([0, 0, 0, 1, 1, 2, 2, 3], dtype=np.int64)


@pytest.fixture
def state(classes):
    return ClassVector.uniform(classes, 4)


class TestConstruction:
    def test_uniform_is_normalized(self, state):
        assert state.norm() == pytest.approx(1.0)

    def test_uniform_matches_dense_pi(self, state):
        dense = state.to_statevector()
        expected = np.zeros((8, 2), dtype=np.complex128)
        expected[:, 0] = 1.0 / np.sqrt(8)
        np.testing.assert_allclose(dense.as_array(), expected)

    def test_class_sizes(self, state):
        np.testing.assert_array_equal(state.class_sizes, [3, 2, 2, 1])

    def test_logical_layout(self, state):
        assert state.layout.shape == (8, 2)
        assert state.dimension == 16

    def test_out_of_range_class_rejected(self):
        with pytest.raises(ValidationError):
            ClassVector(np.array([0, 5]), n_classes=4)

    def test_bad_amp_shape_rejected(self, classes):
        with pytest.raises(ValidationError):
            ClassVector(classes, 4, amps=np.zeros((4, 3)))

    def test_memory_independent_of_universe(self):
        big = ClassVector.uniform(np.zeros(10**5, dtype=np.int64), 4)
        assert big.class_amplitudes().size == 8  # (ν+1) × 2 cells only


class TestKernelsAgainstDense:
    """Every class-space kernel must equal the dense kernel elementwise."""

    def _dense_twin(self, state):
        return state.to_statevector()

    def test_class_flag_unitary_is_dense_controlled_rotation(self, state, classes):
        blocks = u_rotation_blocks(3)
        dense = self._dense_twin(state)
        # Dense equivalent: per-element blocks selected by the class map.
        dense.apply_controlled_qubit_unitary("i", "w", blocks[classes])
        state.apply_class_flag_unitary(blocks)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_phase_slice_matches_dense(self, state):
        dense = self._dense_twin(state)
        phase = np.exp(0.7j)
        dense.apply_phase_slice("w", 0, phase)
        state.apply_phase_slice("w", 0, phase)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_pi_projector_phase_matches_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)  # leave the uniform state first
        dense = self._dense_twin(state)
        phase = np.exp(1.1j)
        dense.apply_pi_projector_phase(phase)
        state.apply_pi_projector_phase(phase)
        np.testing.assert_allclose(state.to_statevector().as_array(), dense.as_array(), atol=1e-12)

    def test_global_phase(self, state):
        state.apply_global_phase(-1.0)
        assert state.class_amplitudes()[0, 0] == pytest.approx(-1.0 / np.sqrt(8))

    def test_marginals_match_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)
        dense = self._dense_twin(state)
        for reg in ("i", "w"):
            np.testing.assert_allclose(
                state.marginal_probabilities(reg),
                dense.marginal_probabilities(reg),
                atol=1e-12,
            )

    def test_probability_of_matches_dense(self, state):
        blocks = u_rotation_blocks(3)
        state.apply_class_flag_unitary(blocks)
        dense = self._dense_twin(state)
        for assignment in ({"w": 0}, {"w": 1}, {"i": 5}, {"i": 7, "w": 1}):
            assert state.probability_of(assignment) == pytest.approx(
                dense.probability_of(assignment), abs=1e-12
            )


class TestUnitarityAndGuards:
    def test_rotation_preserves_norm(self, state):
        state.apply_class_flag_unitary(u_rotation_blocks(3))
        assert state.norm() == pytest.approx(1.0)

    def test_strict_mode_traps_norm_drift(self, state):
        bad = np.tile(np.eye(2, dtype=np.complex128) * 2.0, (4, 1, 1))
        with strict_mode():
            with pytest.raises(NotUnitaryError):
                state.apply_class_flag_unitary(bad)

    def test_nonunit_phase_rejected(self, state):
        with pytest.raises(NotUnitaryError):
            state.apply_global_phase(0.5)
        with pytest.raises(NotUnitaryError):
            state.apply_phase_slice("w", 0, 2.0)

    def test_element_phase_slice_rejected(self, state):
        with pytest.raises(ValidationError):
            state.apply_phase_slice("i", 3, -1.0)

    def test_overlap_requires_same_class_map(self, state):
        other = ClassVector.uniform(np.zeros(8, dtype=np.int64), 4)
        with pytest.raises(ValidationError):
            state.overlap(other)

    def test_copy_is_independent(self, state):
        twin = state.copy()
        twin.apply_global_phase(-1.0)
        assert state.class_amplitudes()[0, 0] != twin.class_amplitudes()[0, 0]

    def test_overlap_and_fidelity(self, state):
        assert state.overlap(state) == pytest.approx(1.0)
        assert state.fidelity_pure(state) == pytest.approx(1.0)


class TestDenseExpansion:
    def test_to_statevector_roundtrip_norm(self, state):
        assert isinstance(state.to_statevector(), StateVector)
        assert state.to_statevector().norm() == pytest.approx(state.norm())


class TestTransferElement:
    """O(1) dynamic updates: one multiplicity move, no class-map rebuild."""

    def test_moves_multiplicity_between_classes(self, state):
        state.transfer_element(3, 2)  # element 3 was in class 1
        np.testing.assert_array_equal(state.class_sizes, [3, 1, 3, 1])
        assert state.element_classes[3] == 2

    def test_matches_full_rebuild(self, classes):
        state = ClassVector.uniform(classes, 4)
        state.transfer_element(0, 1).transfer_element(7, 2)
        rebuilt = ClassVector.uniform(state.element_classes, 4)
        np.testing.assert_array_equal(state.class_sizes, rebuilt.class_sizes)
        np.testing.assert_allclose(
            state.marginal_probabilities("i"), rebuilt.marginal_probabilities("i")
        )

    def test_noop_when_class_unchanged(self, state):
        before = state.class_sizes.copy()
        state.transfer_element(3, 1)
        np.testing.assert_array_equal(state.class_sizes, before)

    def test_refreshes_expected_norm_for_strict_checks(self, classes):
        state = ClassVector.uniform(classes, 4)
        state.apply_class_flag_unitary(u_rotation_blocks(3))  # class-dependent amps
        state.transfer_element(0, 3)  # norm genuinely changes here
        with strict_mode():
            state.apply_global_phase(-1.0)  # must not trip the drift check

    def test_copy_on_write_isolates_copies(self, state):
        twin = state.copy()
        twin.transfer_element(0, 3)
        np.testing.assert_array_equal(state.class_sizes, [3, 2, 2, 1])
        np.testing.assert_array_equal(twin.class_sizes, [2, 2, 2, 2])
        assert state.element_classes[0] == 0
        assert twin.element_classes[0] == 3

    def test_original_mutation_after_copy_is_isolated_too(self, state):
        twin = state.copy()
        state.transfer_element(0, 3)
        np.testing.assert_array_equal(twin.class_sizes, [3, 2, 2, 1])

    def test_out_of_range_element_rejected(self, state):
        with pytest.raises(ValidationError):
            state.transfer_element(8, 0)

    def test_out_of_range_class_rejected(self, state):
        with pytest.raises(ValidationError):
            state.transfer_element(0, 4)


class TestFromParts:
    def test_roundtrips_construction(self, state):
        rebuilt = ClassVector.from_parts(
            state.element_classes, state.class_sizes, state.class_amplitudes()
        )
        assert rebuilt.norm() == pytest.approx(state.norm())
        np.testing.assert_allclose(
            rebuilt.marginal_probabilities("i"), state.marginal_probabilities("i")
        )

    def test_shared_structure_copies_on_transfer(self, state):
        derived = ClassVector.from_parts(
            state.element_classes, state.class_sizes, state.class_amplitudes()
        )
        derived.transfer_element(0, 3)
        np.testing.assert_array_equal(state.class_sizes, [3, 2, 2, 1])

    def test_transfer_never_mutates_caller_array(self, classes):
        # Regression: __init__ stores the caller's int64 array without a
        # copy, so ownership must start False — a transfer on one state
        # must leave the caller's array and sibling states untouched.
        a = ClassVector.uniform(classes, 4)
        b = ClassVector.uniform(classes, 4)
        a.transfer_element(0, 2)
        assert classes[0] == 0
        assert b.element_classes[0] == 0
        np.testing.assert_array_equal(b.class_sizes, [3, 2, 2, 1])
