"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_no_command_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_demo(self, capsys):
        code = main(["demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certificate: VALID" in out

    def test_sample_sequential(self, capsys):
        code = main(["sample", "--universe", "16", "--total", "20",
                     "--machines", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fidelity" in out

    def test_sample_parallel(self, capsys):
        code = main(["sample", "--model", "parallel", "--universe", "16",
                     "--total", "20", "--machines", "2", "--seed", "3"])
        assert code == 0
        assert "parallel" in capsys.readouterr().out

    def test_sample_classes_backend(self, capsys):
        code = main(["sample", "--backend", "classes", "--universe", "16",
                     "--total", "20", "--machines", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "classes" in out

    def test_sample_classes_backend_parallel(self, capsys):
        code = main(["sample", "--model", "parallel", "--backend", "classes",
                     "--universe", "16", "--total", "20", "--machines", "2",
                     "--seed", "3"])
        assert code == 0
        assert "classes" in capsys.readouterr().out

    def test_sample_rejects_model_incompatible_backend(self, capsys):
        code = main(["sample", "--model", "sequential", "--backend", "dense",
                     "--universe", "16", "--total", "20", "--machines", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not support" in err and "subspace" in err

    def test_estimate(self, capsys):
        code = main(["estimate", "--universe", "32", "--total", "4",
                     "--bits", "7", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "M̂" in out or "est." in out

    def test_experiments_listing(self, capsys):
        code = main(["experiments"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E01" in out and "E18" in out

    def test_sample_batched(self, capsys):
        code = main(["sample", "--batch", "8", "--universe", "64", "--total", "24",
                     "--machines", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8" in out and "instances/s" in out

    def test_sample_batched_parallel_with_jobs(self, capsys):
        code = main(["sample", "--batch", "6", "--jobs", "2", "--model", "parallel",
                     "--universe", "32", "--total", "12", "--machines", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "6/6" in out

    def test_sample_batched_runs_stacked_dense_backend(self, capsys):
        """--backend subspace batches on the (B, N, 2) stacked-dense path."""
        code = main(["sample", "--batch", "4", "--backend", "subspace",
                     "--universe", "16", "--total", "8", "--machines", "2"])
        assert code == 0
        assert "4/4" in capsys.readouterr().out

    def test_sample_batched_rejects_unstackable_backend(self, capsys):
        code = main(["sample", "--batch", "4", "--backend", "oracles",
                     "--universe", "16", "--total", "8", "--machines", "2"])
        assert code == 2
        assert "not batchable" in capsys.readouterr().err

    def test_sample_batched_rejects_nonpositive_count(self, capsys):
        code = main(["sample", "--batch", "-1", "--universe", "16",
                     "--total", "8", "--machines", "2"])
        assert code == 2
        assert "positive instance count" in capsys.readouterr().err

    def test_sample_batched_rejects_nonpositive_jobs(self, capsys):
        code = main(["sample", "--batch", "4", "--jobs", "0", "--universe", "16",
                     "--total", "8", "--machines", "2"])
        assert code == 2
        assert "positive worker count" in capsys.readouterr().err

    def test_max_dense_dim_rejects_nonpositive(self, capsys):
        code = main(["sample", "--max-dense-dim", "0", "--universe", "16",
                     "--total", "8", "--machines", "2"])
        assert code == 2
        assert "max_dense_dimension" in capsys.readouterr().err
        code = main(["sample", "--batch", "4", "--max-dense-dim", "-5",
                     "--universe", "16", "--total", "8", "--machines", "2"])
        assert code == 2
        assert "max_dense_dimension" in capsys.readouterr().err

    def test_max_dense_dim_caps_auto_onto_classes(self, capsys):
        """2N = 32 over an 8-cell cap: auto routing must pick classes."""
        code = main(["sample", "--max-dense-dim", "8", "--universe", "16",
                     "--total", "8", "--machines", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "classes" in out


class TestServeCli:
    def test_serve_smoke(self, capsys):
        code = main(["serve", "--max-requests", "8", "--universe", "64",
                     "--total", "24", "--machines", "2", "--batch-size", "4",
                     "--flush-deadline", "0.01", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8" in out  # every request exact
        assert "throughput" in out
        assert "p99 latency" in out

    def test_serve_parallel_model(self, capsys):
        code = main(["serve", "--model", "parallel", "--max-requests", "4",
                     "--universe", "64", "--total", "24", "--machines", "2",
                     "--batch-size", "4", "--flush-deadline", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel rounds" in out

    def test_serve_rejects_nonpositive_count(self, capsys):
        code = main(["serve", "--max-requests", "0"])
        assert code == 2
        assert "max-requests" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_shards(self, capsys):
        code = main(["serve", "--max-requests", "4", "--shards", "0"])
        assert code == 2
        assert "shards" in capsys.readouterr().err

    def test_serve_sharded_tier(self, capsys):
        code = main(["serve", "--max-requests", "8", "--universe", "64",
                     "--total", "24", "--machines", "2", "--batch-size", "4",
                     "--flush-deadline", "0.01", "--seed", "3", "--shards", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8" in out
        assert "shards" in out
        assert "shm batches" in out
        assert "shm fallbacks" in out
        assert "worker restarts" in out
        assert "requeued batches" in out
        assert "flight dumps" in out

    # -- tracing (--trace artifacts and the stats renderer) -----------------------

    def test_sample_trace_writes_spans_and_metrics(self, capsys, tmp_path):
        import json

        from repro.obs.trace import tracing_enabled

        path = tmp_path / "trace.jsonl"
        code = main(["sample", "--universe", "32", "--total", "24",
                     "--machines", "2", "--batch", "4", "--seed", "2",
                     "--trace", str(path)])
        capsys.readouterr()
        assert code == 0
        assert not tracing_enabled()  # main() disabled it on the way out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {record["kind"] for record in records}
        assert kinds == {"span", "metrics"}
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert {"plan", "request", "build", "execute"} <= names
        assert records[-1]["kind"] == "metrics"
        # The registry is process-global and cumulative, so other tests'
        # traffic may be included — but this run's 4 instances are.
        assert records[-1]["metrics"]["engine.instances"] >= 4

    def test_serve_trace_captures_shard_worker_spans(self, capsys, tmp_path):
        import json
        import os

        path = tmp_path / "serve.jsonl"
        code = main(["serve", "--max-requests", "6", "--universe", "64",
                     "--total", "24", "--machines", "2", "--batch-size", "4",
                     "--flush-deadline", "0.01", "--seed", "3", "--shards", "2",
                     "--trace", str(path)])
        capsys.readouterr()
        assert code == 0
        spans = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["kind"] == "span"
        ]
        assert {s["name"] for s in spans} >= {"dispatch", "build", "execute"}
        assert any(s["pid"] != os.getpid() for s in spans)

    def test_stats_renders_a_trace_artifact(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["sample", "--universe", "32", "--total", "24",
                     "--machines", "2", "--batch", "4", "--seed", "2",
                     "--trace", str(path)])
        capsys.readouterr()
        assert code == 0
        code = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans" in out and "phase" in out
        assert "execute" in out
        assert "metrics snapshot" in out
        assert "engine.instances" in out

    def test_stats_rejects_missing_or_empty_input(self, capsys, tmp_path):
        code = main(["stats", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["stats", str(empty)])
        assert code == 2
        assert "no span or metrics" in capsys.readouterr().err

    # -- workloads and scenarios (the adversarial-scenario engine) ----------------

    def test_sample_workload_flag(self, capsys):
        code = main(["sample", "--workload", "sparse", "--universe", "32",
                     "--total", "8", "--machines", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact" in out

    def test_sample_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["sample", "--workload", "pareto"])

    def test_scenarios_listing(self, capsys):
        code = main(["scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("replicated-loss", "disjoint-loss", "chaos-kill-revive"):
            assert name in out

    def test_sample_scenario(self, capsys):
        code = main(["sample", "--scenario", "disjoint-loss", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "disjoint-loss" in out
        assert "fault mask" in out

    def test_sample_rejects_unknown_scenario(self, capsys):
        code = main(["sample", "--scenario", "not-a-scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_serve_scenario_trace(self, capsys):
        code = main(["serve", "--scenario", "chaos-kill-revive",
                     "--max-requests", "8", "--batch-size", "4",
                     "--flush-deadline", "0.01", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8/8" in out

    def test_serve_workload_flag(self, capsys):
        code = main(["serve", "--workload", "uniform", "--max-requests", "4",
                     "--universe", "32", "--total", "16", "--machines", "2",
                     "--batch-size", "4", "--flush-deadline", "0.01"])
        assert code == 0
        assert "4/4" in capsys.readouterr().out


class TestLintCommand:
    """`python -m repro lint` — the CI gate surface."""

    def _tree(self, tmp_path, dirty=True):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        body = 'raise ValueError("bad")\n' if dirty else "x = 1\n"
        (pkg / "mod.py").write_text(body, encoding="utf-8")
        return tmp_path / "src"

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        code = main(["lint", str(self._tree(tmp_path, dirty=False))])
        assert code == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        code = main(["lint", str(self._tree(tmp_path))])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP008" in out
        assert "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        import json as json_mod

        code = main(["lint", str(self._tree(tmp_path)), "--format", "json"])
        payload = json_mod.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"] == {"REP008": 1}

    def test_output_file(self, tmp_path, capsys):
        import json as json_mod

        report_path = tmp_path / "out" / "analysis_report.json"
        code = main(["lint", str(self._tree(tmp_path, dirty=False)),
                     "--format", "json", "--output", str(report_path)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json_mod.loads(report_path.read_text(encoding="utf-8"))
        assert payload["total"] == 0

    def test_select_subset(self, tmp_path, capsys):
        code = main(["lint", str(self._tree(tmp_path)), "--select", "REP001"])
        assert code == 0  # REP008 violation invisible to a REP001-only run
        capsys.readouterr()

    def test_select_unknown_rule_exits_two(self, tmp_path, capsys):
        code = main(["lint", str(self._tree(tmp_path)), "--select", "REP555"])
        assert code == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path / "absent")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("REP001", "REP008", "REP902"):
            assert rule_id in out
        assert "no-unseeded-rng" in out

    def test_repo_tree_is_clean(self, capsys):
        """The acceptance gate: the shipped tree has zero findings."""
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        paths = [str(repo / d)
                 for d in ("src", "tests", "benchmarks", "examples")
                 if (repo / d).exists()]
        code = main(["lint", *paths])
        capsys.readouterr()
        assert code == 0
