"""Context-local numerics configuration (safe under concurrent sweeps)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import CONFIG, strict_mode


class TestRoutingThresholds:
    """The planner's magic numbers live here, once."""

    def test_defaults(self):
        assert CONFIG.stack_threshold == 64
        assert CONFIG.classes_universe_threshold == 10**5
        assert CONFIG.max_dense_dimension == 2**24

    def test_fields_are_plain_mutable_attributes(self):
        before = CONFIG.stack_threshold
        CONFIG.stack_threshold = 8
        try:
            assert CONFIG.stack_threshold == 8
        finally:
            CONFIG.stack_threshold = before


class TestStrictChecksContextVar:
    def test_default_off(self):
        assert not CONFIG.strict_checks

    def test_attribute_assignment_still_works(self):
        CONFIG.strict_checks = True
        try:
            assert CONFIG.strict_checks
        finally:
            CONFIG.strict_checks = False
        assert not CONFIG.strict_checks

    def test_strict_mode_token_restores_nested(self):
        with strict_mode():
            assert CONFIG.strict_checks
            with strict_mode(False):
                assert not CONFIG.strict_checks
            assert CONFIG.strict_checks
        assert not CONFIG.strict_checks

    def test_threads_do_not_observe_each_others_toggle(self):
        """The race the ContextVar fixes: one worker's strict_mode used to
        flip norm checking for every in-flight sampler run."""
        inside = threading.Event()
        observed_in_other_thread = []

        def toggler():
            with strict_mode():
                inside.set()
                release.wait(timeout=5)
            return True

        def observer():
            inside.wait(timeout=5)
            observed_in_other_thread.append(CONFIG.strict_checks)
            release.set()
            return True

        release = threading.Event()
        with ThreadPoolExecutor(max_workers=2) as pool:
            f1 = pool.submit(toggler)
            f2 = pool.submit(observer)
            assert f1.result(timeout=10) and f2.result(timeout=10)
        assert observed_in_other_thread == [False]

    def test_concurrent_strict_sweeps_are_isolated(self):
        """Many threads toggling strict_mode concurrently each see their
        own value for the entire scope."""

        def worker(enabled: bool) -> bool:
            with strict_mode(enabled):
                # Re-read many times while other threads toggle freely.
                return all(CONFIG.strict_checks is enabled for _ in range(200))

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, [i % 2 == 0 for i in range(32)]))
        assert all(results)

    def test_strict_runs_work_inside_threads(self, small_db):
        """A strict-mode sampler run on a worker thread passes its norm
        checks without requiring any global coordination."""
        from repro.core import sample_sequential

        def run():
            with strict_mode():
                return sample_sequential(small_db, backend="classes").exact

        with ThreadPoolExecutor(max_workers=4) as pool:
            assert all(pool.submit(run).result() for _ in range(4))

    def test_strict_mode_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with strict_mode():
                raise RuntimeError("boom")
        assert not CONFIG.strict_checks
